package transport

import (
	"encoding/binary"
	"errors"
	"io"
	"net"
	"runtime"
	"sync"
	"testing"
	"time"

	"partsvc/internal/wire"
)

// TestShedUnderLoad is the admission-control regression: a saturating
// burst against a 1-worker listener with a tiny queue must produce
// immediate ErrOverloaded replies for the overflow — never a stalled
// reader, a blocked healthy call, or a starved pool.
func TestShedUnderLoad(t *testing.T) {
	tr := NewTCP()
	tr.Workers = 1
	tr.QueueDepth = 2
	tr.CallTimeout = 30 * time.Second

	release := make(chan struct{})
	var entered sync.WaitGroup
	entered.Add(1)
	var enterOnce sync.Once
	slow := HandlerFunc(func(m *wire.Message) *wire.Message {
		enterOnce.Do(entered.Done)
		<-release
		return &wire.Message{Kind: wire.KindResponse, ID: m.ID}
	})
	ln, err := tr.Serve("", slow)
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	ep, err := tr.Dial(ln.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer ep.Close()

	// Occupy the single worker, then saturate queue + shed path.
	var wg sync.WaitGroup
	const burst = 16
	results := make(chan error, burst)
	wg.Add(1)
	go func() {
		defer wg.Done()
		resp, err := ep.Call(&wire.Message{Kind: wire.KindRequest, Method: "slow"})
		if err == nil {
			err = AsError(resp)
		}
		results <- err
	}()
	entered.Wait() // the worker is now parked in the handler
	for i := 0; i < burst-1; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			resp, err := ep.Call(&wire.Message{Kind: wire.KindRequest, Method: "slow"})
			if err == nil {
				err = AsError(resp)
			}
			results <- err
		}()
	}

	// Shed replies must come back while the worker is still parked: wait
	// for at least one without releasing the handler.
	select {
	case err := <-results:
		if !errors.Is(err, ErrOverloaded) {
			t.Fatalf("first completed call got %v, want ErrOverloaded (worker is parked)", err)
		}
		results <- err // put it back for the tally
	case <-time.After(10 * time.Second):
		t.Fatal("no shed reply while the pool was saturated — reader stalled instead of shedding")
	}

	close(release)
	wg.Wait()
	close(results)
	var ok, overloaded int
	for err := range results {
		switch {
		case err == nil:
			ok++
		case errors.Is(err, ErrOverloaded):
			overloaded++
		default:
			t.Fatalf("call failed with %v, want nil or ErrOverloaded", err)
		}
	}
	if ok == 0 || overloaded == 0 || ok+overloaded != burst {
		t.Fatalf("ok=%d overloaded=%d of %d: want both outcomes and no losses", ok, overloaded, burst)
	}
	snap := tr.Stats()
	if snap.Shed != uint64(overloaded) {
		t.Fatalf("stats.Shed=%d, but %d calls saw ErrOverloaded", snap.Shed, overloaded)
	}
	if snap.QueueDepth != 0 {
		t.Fatalf("queue depth %d after drain, want 0", snap.QueueDepth)
	}
	if snap.QueueWaited == 0 {
		t.Fatal("no queue-wait samples recorded for admitted requests")
	}
}

// TestOverloadErrorMapping pins the wire contract: a shed reply decodes
// back to ErrOverloaded through AsError, on zero-copy and copy-decoded
// messages alike.
func TestOverloadErrorMapping(t *testing.T) {
	req := &wire.Message{Kind: wire.KindRequest, ID: 9, Method: "m", Target: "t"}
	resp := OverloadResponse(req)
	if resp.Kind != wire.KindError || resp.ID != req.ID {
		t.Fatalf("OverloadResponse = %+v", resp)
	}
	err := AsError(resp)
	if !errors.Is(err, ErrOverloaded) {
		t.Fatalf("AsError(OverloadResponse) = %v, want ErrOverloaded", err)
	}
	// Round-trip through the wire, then release the slab before using
	// the error: its text must have been copied out.
	data, _ := resp.Marshal()
	buf := append(wire.GetBufferSize(len(data)), data...)
	decoded, derr := wire.UnmarshalMessageSlab(buf)
	if derr != nil {
		t.Fatal(derr)
	}
	err = AsError(decoded)
	decoded.Release()
	if !errors.Is(err, ErrOverloaded) || err.Error() == "" {
		t.Fatalf("decoded shed reply maps to %v", err)
	}
	_ = err.Error() // must not read released slab memory (caught by -race/asan if it did)
}

// TestMuxV1PipelinedBatchedWriter is the framing regression for the
// scatter-gather writer: a legacy v1 peer pipelining many requests at
// once gets every reply v1-framed even when the writer coalesces them
// into one writev batch with (headerless) v1 headers.
func TestMuxV1PipelinedBatchedWriter(t *testing.T) {
	tr := NewTCP()
	ln, err := tr.Serve("", echoHandler)
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()

	conn, err := net.Dial("tcp", ln.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	conn.SetDeadline(time.Now().Add(30 * time.Second))

	// Pipeline the whole burst in one write so the server's writer sees
	// many v1 responses queued at once and batches them.
	const n = 100
	var burst []byte
	for i := 1; i <= n; i++ {
		payload, err := (&wire.Message{Kind: wire.KindRequest, ID: uint64(i), Method: "ping"}).Marshal()
		if err != nil {
			t.Fatal(err)
		}
		burst = binary.BigEndian.AppendUint32(burst, uint32(len(payload)))
		burst = append(burst, payload...)
	}
	if _, err := conn.Write(burst); err != nil {
		t.Fatal(err)
	}

	// v1 has no frame IDs and the pool serves concurrently, so replies
	// arrive in any order: correlate by application message ID.
	seen := map[uint64]bool{}
	var hdr [4]byte
	for i := 0; i < n; i++ {
		if _, err := io.ReadFull(conn, hdr[:]); err != nil {
			t.Fatalf("reading reply %d header: %v", i, err)
		}
		word := binary.BigEndian.Uint32(hdr[:])
		if word&0x80000000 != 0 {
			t.Fatalf("reply %d is v2-framed; a v1 peer cannot decode it", i)
		}
		buf := make([]byte, word)
		if _, err := io.ReadFull(conn, buf); err != nil {
			t.Fatalf("reading reply %d payload: %v", i, err)
		}
		resp, err := wire.UnmarshalMessage(buf)
		if err != nil {
			t.Fatalf("decoding reply %d: %v", i, err)
		}
		if resp.Kind != wire.KindResponse || seen[resp.ID] {
			t.Fatalf("reply %d: kind=%v id=%d (dup=%v)", i, resp.Kind, resp.ID, seen[resp.ID])
		}
		seen[resp.ID] = true
	}
	if len(seen) != n {
		t.Fatalf("got %d distinct replies, want %d", len(seen), n)
	}
}

// TestZeroCopyResponses exercises the opt-in client-side slab decode:
// responses are slab-backed, field-correct, and releasable.
func TestZeroCopyResponses(t *testing.T) {
	tr := NewTCP()
	tr.ZeroCopyResponses = true
	ln, err := tr.Serve("", echoHandler)
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	ep, err := tr.Dial(ln.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer ep.Close()
	for i := 0; i < 50; i++ {
		resp, err := ep.Call(&wire.Message{Kind: wire.KindRequest, ID: uint64(i), Body: []byte("zc")})
		if err != nil {
			t.Fatal(err)
		}
		if !resp.ZeroCopy() {
			t.Fatal("response is not slab-backed with ZeroCopyResponses on")
		}
		if resp.ID != uint64(i) || string(resp.Body) != "echo:zc" {
			t.Fatalf("resp = %+v", resp)
		}
		resp.Release()
	}
}

// TestDefaultWorkersTracksGOMAXPROCS pins the Serve-time sizing fix: a
// GOMAXPROCS change after package init must be reflected in the pool
// size of listeners created afterwards.
func TestDefaultWorkersTracksGOMAXPROCS(t *testing.T) {
	old := runtime.GOMAXPROCS(0)
	defer runtime.GOMAXPROCS(old)
	runtime.GOMAXPROCS(old + 2)
	if got, want := DefaultWorkers(), 4*(old+2); got != want {
		t.Fatalf("DefaultWorkers() = %d after GOMAXPROCS(%d), want %d", got, old+2, want)
	}
	runtime.GOMAXPROCS(old)
	if got, want := DefaultWorkers(), 4*old; got != want {
		t.Fatalf("DefaultWorkers() = %d after restore, want %d", got, want)
	}
}
