package transport

import (
	"sync/atomic"

	"partsvc/internal/wire"
)

// Stats holds the per-transport data-plane counters. All fields are
// atomic; one Stats value is shared by every endpoint and connection of
// a transport so the totals describe the whole data plane.
type Stats struct {
	// InFlight is the number of calls currently awaiting a response.
	InFlight atomic.Int64
	// FramesSent / FramesReceived count frames crossing the transport.
	FramesSent     atomic.Uint64
	FramesReceived atomic.Uint64
	// BytesSent / BytesReceived count framed bytes (headers included).
	BytesSent     atomic.Uint64
	BytesReceived atomic.Uint64
	// DecodeErrors counts frames whose payload failed to decode
	// (transport_decode_errors: corrupt or hostile traffic).
	DecodeErrors atomic.Uint64
}

// StatsSnapshot is a point-in-time copy of Stats plus the wire buffer
// pool counters, suitable for rendering in tables.
type StatsSnapshot struct {
	InFlight       int64
	FramesSent     uint64
	FramesReceived uint64
	BytesSent      uint64
	BytesReceived  uint64
	DecodeErrors   uint64
	PoolHits       uint64
	PoolMisses     uint64
}

// Snapshot copies the counters and attaches the wire pool stats.
func (s *Stats) Snapshot() StatsSnapshot {
	hits, misses := wire.PoolStats()
	return StatsSnapshot{
		InFlight:       s.InFlight.Load(),
		FramesSent:     s.FramesSent.Load(),
		FramesReceived: s.FramesReceived.Load(),
		BytesSent:      s.BytesSent.Load(),
		BytesReceived:  s.BytesReceived.Load(),
		DecodeErrors:   s.DecodeErrors.Load(),
		PoolHits:       hits,
		PoolMisses:     misses,
	}
}

// PoolHitRate returns the buffer pool hit fraction (0 when unused).
func (s StatsSnapshot) PoolHitRate() float64 {
	total := s.PoolHits + s.PoolMisses
	if total == 0 {
		return 0
	}
	return float64(s.PoolHits) / float64(total)
}
