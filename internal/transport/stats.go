package transport

import (
	"sync"

	"partsvc/internal/metrics"
)

// Stats holds the per-transport data-plane counters. One Stats value is
// shared by every endpoint and connection of a transport so the totals
// describe the whole data plane. The counters are per-core sharded
// (metrics.ShardedCounter): the hot path touches a shard picked by the
// running P, so concurrent connections and callers never contend on one
// cache line, and Snapshot merges the shards into exact totals.
type Stats struct {
	// InFlight is the number of calls currently awaiting a response.
	InFlight metrics.ShardedCounter
	// FramesSent / FramesReceived count frames crossing the transport.
	FramesSent     metrics.ShardedCounter
	FramesReceived metrics.ShardedCounter
	// BytesSent / BytesReceived count framed bytes (headers included).
	BytesSent     metrics.ShardedCounter
	BytesReceived metrics.ShardedCounter
	// DecodeErrors counts frames whose payload failed to decode
	// (transport_decode_errors: corrupt or hostile traffic).
	DecodeErrors metrics.ShardedCounter
	// Shed counts requests refused by admission control: the worker
	// pool and its queue were both full, so the server answered with a
	// CodeOverloaded error instead of queueing.
	Shed metrics.ShardedCounter
	// QueueDepth is the number of admitted requests currently waiting
	// for (or held by the channel buffer ahead of) a worker.
	QueueDepth metrics.ShardedCounter
	// QueueWait records milliseconds each admitted request spent in the
	// dispatch queue before a worker picked it up — time-in-queue is
	// the first overload signal, visible well before shedding starts.
	QueueWait metrics.ShardedHistogram
	// liveQueues tracks the open MPSC write queues (registered at
	// creation, dropped at close) so Snapshot can report aggregate
	// write-queue depth by summing their sizes — keeping the per-frame
	// push path free of any global counter.
	liveQueues sync.Map // *writeQueue -> struct{}
	// WriterParks / WriterWakes count semaphore round trips on the MPSC
	// write queues: parks is writer goroutines going to sleep on an
	// empty queue, wakes is producers releasing them. A low park rate
	// under load means the spin-then-park coalescing is absorbing the
	// traffic without scheduler round trips.
	WriterParks metrics.ShardedCounter
	WriterWakes metrics.ShardedCounter
	// WriteBatch records the frame count of each writev flush — the
	// direct measure of write coalescing (batch p50 near 1 means no
	// coalescing; under load it should track the caller concurrency).
	WriteBatch metrics.ShardedHistogram
	// RingConns counts ring (shared-memory) connections established via
	// the co-located fast path.
	RingConns metrics.ShardedCounter
	// RingParks / RingWakes count semaphore round trips on ring
	// producers and consumers (spin misses).
	RingParks metrics.ShardedCounter
	RingWakes metrics.ShardedCounter
	// RingOccupancy is the number of bytes currently buffered across
	// all rings (produced minus consumed).
	RingOccupancy metrics.ShardedCounter
}

// StatsSnapshot is a point-in-time copy of one transport's counters,
// suitable for rendering in tables. It is strictly per-transport: the
// process-wide wire buffer pool is reported separately by
// wire.SnapshotPool, so two live transports never fold each other's
// pool traffic into their own numbers.
type StatsSnapshot struct {
	InFlight       int64
	FramesSent     uint64
	FramesReceived uint64
	BytesSent      uint64
	BytesReceived  uint64
	DecodeErrors   uint64
	Shed           uint64
	QueueDepth     int64
	// QueueWaited counts requests that went through the dispatch queue;
	// the P50/P99/Max quantiles describe their wait in milliseconds.
	QueueWaited    uint64
	QueueWaitP50MS float64
	QueueWaitP99MS float64
	QueueWaitMaxMS float64
	// WriteQueueDepth / park-wake counters describe the MPSC write
	// queues; WriteBatches and the batch quantiles describe writev
	// coalescing (frames per flush).
	WriteQueueDepth int64
	WriterParks     uint64
	WriterWakes     uint64
	WriteBatches    uint64
	WriteBatchP50   float64
	WriteBatchP99   float64
	WriteBatchMax   float64
	// Ring transport counters (co-located fast path).
	RingConns     uint64
	RingParks     uint64
	RingWakes     uint64
	RingOccupancy int64
}

// Snapshot merges this transport's sharded counters into exact totals.
func (s *Stats) Snapshot() StatsSnapshot {
	snap := StatsSnapshot{
		InFlight:       s.InFlight.Load(),
		FramesSent:     uint64(s.FramesSent.Load()),
		FramesReceived: uint64(s.FramesReceived.Load()),
		BytesSent:      uint64(s.BytesSent.Load()),
		BytesReceived:  uint64(s.BytesReceived.Load()),
		DecodeErrors:   uint64(s.DecodeErrors.Load()),
		Shed:           uint64(s.Shed.Load()),
		QueueDepth:     s.QueueDepth.Load(),

		WriterParks:     uint64(s.WriterParks.Load()),
		WriterWakes:     uint64(s.WriterWakes.Load()),
		RingConns:       uint64(s.RingConns.Load()),
		RingParks:       uint64(s.RingParks.Load()),
		RingWakes:       uint64(s.RingWakes.Load()),
		RingOccupancy:   s.RingOccupancy.Load(),
	}
	s.liveQueues.Range(func(k, _ any) bool {
		snap.WriteQueueDepth += k.(*writeQueue).len()
		return true
	})
	if qw := s.QueueWait.Snapshot(); qw.Count() > 0 {
		snap.QueueWaited = qw.Count()
		snap.QueueWaitP50MS = qw.Quantile(0.50)
		snap.QueueWaitP99MS = qw.Quantile(0.99)
		snap.QueueWaitMaxMS = qw.Max()
	}
	if wb := s.WriteBatch.Snapshot(); wb.Count() > 0 {
		snap.WriteBatches = wb.Count()
		snap.WriteBatchP50 = wb.Quantile(0.50)
		snap.WriteBatchP99 = wb.Quantile(0.99)
		snap.WriteBatchMax = wb.Max()
	}
	return snap
}

// KVs renders the snapshot as registry rows.
func (s StatsSnapshot) KVs() []metrics.KV {
	return []metrics.KV{
		metrics.KVf("in_flight", "%d", s.InFlight),
		metrics.KVf("frames_sent", "%d", s.FramesSent),
		metrics.KVf("frames_received", "%d", s.FramesReceived),
		metrics.KVf("bytes_sent", "%d", s.BytesSent),
		metrics.KVf("bytes_received", "%d", s.BytesReceived),
		metrics.KVf("decode_errors", "%d", s.DecodeErrors),
		metrics.KVf("shed", "%d", s.Shed),
		metrics.KVf("queue_depth", "%d", s.QueueDepth),
		metrics.KVf("queue_wait_p50_ms", "%.3f", s.QueueWaitP50MS),
		metrics.KVf("queue_wait_p99_ms", "%.3f", s.QueueWaitP99MS),
		metrics.KVf("write_queue_depth", "%d", s.WriteQueueDepth),
		metrics.KVf("writer_parks", "%d", s.WriterParks),
		metrics.KVf("writer_wakes", "%d", s.WriterWakes),
		metrics.KVf("write_batch_p50", "%.1f", s.WriteBatchP50),
		metrics.KVf("write_batch_p99", "%.1f", s.WriteBatchP99),
		metrics.KVf("write_batch_max", "%.0f", s.WriteBatchMax),
		metrics.KVf("ring_conns", "%d", s.RingConns),
		metrics.KVf("ring_parks", "%d", s.RingParks),
		metrics.KVf("ring_wakes", "%d", s.RingWakes),
		metrics.KVf("ring_occupancy_bytes", "%d", s.RingOccupancy),
	}
}

// RegisterMetrics exposes this transport's counters in reg under the
// given section name ("transport.tcp"). Call UnregisterSection on
// close if the registry outlives the transport.
func (s *Stats) RegisterMetrics(reg *metrics.Registry, section string) {
	reg.RegisterSection(section, func() []metrics.KV { return s.Snapshot().KVs() })
}
