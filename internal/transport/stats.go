package transport

import (
	"sync/atomic"

	"partsvc/internal/metrics"
)

// Stats holds the per-transport data-plane counters. All fields are
// atomic; one Stats value is shared by every endpoint and connection of
// a transport so the totals describe the whole data plane.
type Stats struct {
	// InFlight is the number of calls currently awaiting a response.
	InFlight atomic.Int64
	// FramesSent / FramesReceived count frames crossing the transport.
	FramesSent     atomic.Uint64
	FramesReceived atomic.Uint64
	// BytesSent / BytesReceived count framed bytes (headers included).
	BytesSent     atomic.Uint64
	BytesReceived atomic.Uint64
	// DecodeErrors counts frames whose payload failed to decode
	// (transport_decode_errors: corrupt or hostile traffic).
	DecodeErrors atomic.Uint64
}

// StatsSnapshot is a point-in-time copy of one transport's counters,
// suitable for rendering in tables. It is strictly per-transport: the
// process-wide wire buffer pool is reported separately by
// wire.SnapshotPool, so two live transports never fold each other's
// pool traffic into their own numbers.
type StatsSnapshot struct {
	InFlight       int64
	FramesSent     uint64
	FramesReceived uint64
	BytesSent      uint64
	BytesReceived  uint64
	DecodeErrors   uint64
}

// Snapshot copies this transport's counters.
func (s *Stats) Snapshot() StatsSnapshot {
	return StatsSnapshot{
		InFlight:       s.InFlight.Load(),
		FramesSent:     s.FramesSent.Load(),
		FramesReceived: s.FramesReceived.Load(),
		BytesSent:      s.BytesSent.Load(),
		BytesReceived:  s.BytesReceived.Load(),
		DecodeErrors:   s.DecodeErrors.Load(),
	}
}

// KVs renders the snapshot as registry rows.
func (s StatsSnapshot) KVs() []metrics.KV {
	return []metrics.KV{
		metrics.KVf("in_flight", "%d", s.InFlight),
		metrics.KVf("frames_sent", "%d", s.FramesSent),
		metrics.KVf("frames_received", "%d", s.FramesReceived),
		metrics.KVf("bytes_sent", "%d", s.BytesSent),
		metrics.KVf("bytes_received", "%d", s.BytesReceived),
		metrics.KVf("decode_errors", "%d", s.DecodeErrors),
	}
}

// RegisterMetrics exposes this transport's counters in reg under the
// given section name ("transport.tcp"). Call UnregisterSection on
// close if the registry outlives the transport.
func (s *Stats) RegisterMetrics(reg *metrics.Registry, section string) {
	reg.RegisterSection(section, func() []metrics.KV { return s.Snapshot().KVs() })
}
