package transport

import (
	"context"
	"errors"
	"fmt"
	"net"
	"runtime"
	"sync"
	"time"

	"partsvc/internal/wire"
)

// TCP is the network transport: v2 frames (request-ID multiplexed) of
// wire-encoded messages over TCP connections. Each endpoint keeps many
// calls in flight on one connection: a writer goroutine coalesces
// queued frames into single syscalls, a reader goroutine demultiplexes
// responses by frame ID back to the waiting callers. Servers dispatch
// handler invocations on a bounded worker pool, so one slow call does
// not head-of-line-block its connection.
type TCP struct {
	// Workers bounds concurrent handler invocations per listener
	// (0 means DefaultWorkers).
	Workers int
	// CallTimeout bounds each endpoint call (0 means no timeout).
	CallTimeout time.Duration
	// WriteTimeout bounds each write flush on a connection (0 means
	// DefaultWriteTimeout). A peer that stops reading makes the flush
	// miss this deadline, which kills the connection instead of
	// blocking its writer goroutine forever.
	WriteTimeout time.Duration

	stats Stats
}

// DefaultWorkers is the default per-listener handler pool size.
var DefaultWorkers = 4 * runtime.GOMAXPROCS(0)

// DefaultWriteTimeout is the default per-flush write deadline.
var DefaultWriteTimeout = 10 * time.Second

// ErrCallTimeout reports a call that exceeded the transport's
// CallTimeout while waiting for its response.
var ErrCallTimeout = errors.New("transport: call timed out")

// errStalled reports a connection killed because its peer stopped
// draining responses (full write queue or missed write deadline).
var errStalled = errors.New("transport: peer not reading responses")

func (t *TCP) writeTimeout() time.Duration {
	if t.WriteTimeout > 0 {
		return t.WriteTimeout
	}
	return DefaultWriteTimeout
}

// NewTCP returns the TCP transport.
func NewTCP() *TCP { return &TCP{} }

// Stats returns a snapshot of the transport's data-plane counters.
func (t *TCP) Stats() StatsSnapshot { return t.stats.Snapshot() }

// outFrame is one frame queued for a connection's writer goroutine.
// Payloads come from the wire buffer pool and are returned to it after
// the write (or on shutdown). Responses to v1 requests set v1 so the
// reply goes out in the framing the peer can decode.
type outFrame struct {
	id      uint64
	payload []byte
	v1      bool
}

// writeLoop owns the write half of a connection. It coalesces every
// frame queued while a flush is pending into the next flush, so bursts
// of concurrent calls reach the kernel in a handful of syscalls. Every
// batch runs under a write deadline: a peer that stops reading fails
// the flush within timeout instead of pinning this goroutine (and
// anyone waiting on it) forever. When stop is closed it drains the
// queue, flushes, and exits. The first write error is reported through
// onErr (at most once) and stops the loop.
func writeLoop(conn net.Conn, ch <-chan outFrame, stop <-chan struct{}, timeout time.Duration, stats *Stats, onErr func(error)) {
	fw := wire.NewFrameWriter(conn)
	writeOne := func(f outFrame) error {
		var err error
		if f.v1 {
			err = fw.WriteFrameV1(f.payload)
		} else {
			err = fw.WriteFrame(f.id, f.payload)
		}
		if err == nil {
			stats.FramesSent.Add(1)
			hdr := uint64(13)
			if f.v1 {
				hdr = 4
			}
			stats.BytesSent.Add(uint64(len(f.payload)) + hdr)
		}
		wire.PutBuffer(f.payload)
		return err
	}
	drainDiscard := func() {
		for {
			select {
			case f := <-ch:
				wire.PutBuffer(f.payload)
			default:
				return
			}
		}
	}
	fail := func(err error) {
		onErr(err)
		drainDiscard()
	}
	for {
		select {
		case f := <-ch:
			conn.SetWriteDeadline(time.Now().Add(timeout))
			if err := writeOne(f); err != nil {
				fail(err)
				return
			}
			// Coalesce whatever queued up behind this frame.
		coalesce:
			for {
				select {
				case f := <-ch:
					if err := writeOne(f); err != nil {
						fail(err)
						return
					}
				default:
					break coalesce
				}
			}
			if err := fw.Flush(); err != nil {
				fail(err)
				return
			}
		case <-stop:
			// Final drain: flush responses queued before the stop, still
			// under a deadline so a dead peer cannot block teardown.
			conn.SetWriteDeadline(time.Now().Add(timeout))
			for {
				select {
				case f := <-ch:
					if err := writeOne(f); err != nil {
						fail(err)
						return
					}
				default:
					if err := fw.Flush(); err != nil {
						fail(err)
					}
					return
				}
			}
		}
	}
}

// Serve listens on addr ("host:port"; empty means "127.0.0.1:0") and
// dispatches incoming messages to h on a bounded worker pool.
func (t *TCP) Serve(addr string, h Handler) (Listener, error) {
	if addr == "" {
		addr = "127.0.0.1:0"
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("transport: listen %s: %w", addr, err)
	}
	workers := t.Workers
	if workers <= 0 {
		workers = DefaultWorkers
	}
	l := &tcpListener{
		ln:           ln,
		h:            h,
		conns:        map[net.Conn]struct{}{},
		dispatch:     make(chan dispatchReq, workers),
		quit:         make(chan struct{}),
		writeTimeout: t.writeTimeout(),
		stats:        &t.stats,
	}
	// The bounded worker pool: persistent goroutines shared by every
	// connection, so a request costs a queue hop, not a goroutine spawn,
	// and one slow handler can never occupy more than its worker.
	for i := 0; i < workers; i++ {
		go l.worker()
	}
	go l.acceptLoop()
	return l, nil
}

// dispatchReq is one handler invocation queued to the worker pool.
type dispatchReq struct {
	req     *wire.Message
	frameID uint64
	frameV1 bool           // request arrived v1-framed: reply v1-framed
	enqueue func(outFrame) // parks the response on the request's connection
}

type tcpListener struct {
	ln           net.Listener
	h            Handler
	dispatch     chan dispatchReq // bounded handler pool feed
	quit         chan struct{}    // closed when the listener closes
	writeTimeout time.Duration
	stats        *Stats

	mu     sync.Mutex
	conns  map[net.Conn]struct{}
	closed bool
}

// worker drains the dispatch queue until the listener closes.
func (l *tcpListener) worker() {
	for {
		select {
		case d := <-l.dispatch:
			resp := serveObserved(l.h, d.req)
			if resp == nil {
				resp = ErrorResponse(d.req, "handler returned nil")
			}
			// AppendTo returns the scratch buffer unmodified on error, so
			// the pooled buffer is reused for the error response instead
			// of leaking.
			buf, err := resp.AppendTo(wire.GetBuffer())
			if err != nil {
				buf, _ = ErrorResponse(d.req, "encoding response: %v", err).AppendTo(buf[:0])
			}
			d.enqueue(outFrame{id: d.frameID, payload: buf, v1: d.frameV1})
		case <-l.quit:
			return
		}
	}
}

func (l *tcpListener) Addr() string { return l.ln.Addr().String() }

func (l *tcpListener) Close() error {
	l.mu.Lock()
	already := l.closed
	l.closed = true
	conns := make([]net.Conn, 0, len(l.conns))
	for c := range l.conns {
		conns = append(conns, c)
	}
	l.mu.Unlock()
	if !already {
		close(l.quit) // releases the worker pool
	}
	err := l.ln.Close()
	for _, c := range conns {
		c.Close()
	}
	return err
}

func (l *tcpListener) acceptLoop() {
	for {
		conn, err := l.ln.Accept()
		if err != nil {
			return // listener closed
		}
		l.mu.Lock()
		if l.closed {
			l.mu.Unlock()
			conn.Close()
			return
		}
		l.conns[conn] = struct{}{}
		l.mu.Unlock()
		go l.serveConn(conn)
	}
}

// serveConn reads frames, dispatches each request to the worker pool,
// and queues responses (tagged with the request's frame ID and echoing
// its frame version) to the connection's writer. A frame that fails to
// decode gets a best-effort final error response before the connection
// drops, and bumps the transport_decode_errors counter.
func (l *tcpListener) serveConn(conn net.Conn) {
	writeCh := make(chan outFrame, 256)
	writerStop := make(chan struct{})
	writerDone := make(chan struct{})
	connDead := make(chan struct{})
	var deadOnce sync.Once
	// markDead also closes the connection: it unblocks a writer parked
	// in conn.Write and makes the read loop exit, so one failed half
	// tears the whole connection down promptly.
	markDead := func(error) {
		deadOnce.Do(func() {
			close(connDead)
			conn.Close()
		})
	}
	go func() {
		defer close(writerDone)
		writeLoop(conn, writeCh, writerStop, l.writeTimeout, l.stats, markDead)
	}()

	// enqueue parks a response for the writer unless the connection has
	// already failed. It NEVER blocks: the pool workers are shared by
	// every connection, so a peer that sends requests but stops reading
	// responses (full writeCh behind a stalled writer) must cost this
	// connection its life, not stall the whole listener.
	enqueue := func(f outFrame) {
		select {
		case writeCh <- f:
			return
		case <-connDead:
		default:
			markDead(errStalled)
		}
		wire.PutBuffer(f.payload)
	}

	fr := wire.NewFrameReader(conn)
readLoop:
	for {
		f, err := fr.Next()
		if err != nil {
			if isDecodeFraming(err) {
				// Corrupt framing: nothing to correlate a response to.
				l.stats.DecodeErrors.Add(1)
			}
			break
		}
		hdrLen := uint64(13)
		if f.Version == wire.FrameV1 {
			hdrLen = 4
		}
		l.stats.FramesReceived.Add(1)
		l.stats.BytesReceived.Add(uint64(len(f.Payload)) + hdrLen)
		req, derr := wire.UnmarshalMessage(f.Payload)
		wire.PutBuffer(f.Payload)
		frameV1 := f.Version == wire.FrameV1
		if derr != nil {
			// The frame was well-formed but the message was not: tell
			// the caller (correlated by frame ID) before dropping the
			// connection instead of dying silently.
			l.stats.DecodeErrors.Add(1)
			buf, _ := ErrorResponse(&wire.Message{}, "decoding request: %v", derr).AppendTo(wire.GetBuffer())
			enqueue(outFrame{id: f.ID, payload: buf, v1: frameV1})
			break
		}
		select {
		case l.dispatch <- dispatchReq{req: req, frameID: f.ID, frameV1: frameV1, enqueue: enqueue}:
		case <-l.quit:
			break readLoop
		}
	}
	// Flush whatever responses are already queued, then cut loose any
	// handler still trying to enqueue one. The writer's final drain runs
	// under a write deadline, so a peer that half-closed its read side
	// without draining responses cannot pin this goroutine (or leak the
	// connection) past writeTimeout.
	close(writerStop)
	<-writerDone
	markDead(nil)
	l.mu.Lock()
	delete(l.conns, conn)
	l.mu.Unlock()
	conn.Close()
}

// isDecodeFraming reports whether a frame-read error indicates corrupt
// framing rather than a clean close or I/O failure.
func isDecodeFraming(err error) bool {
	return errors.Is(err, wire.ErrFrameTooLarge) || errors.Is(err, wire.ErrFrameVersion)
}

// Dial connects to a served TCP address.
func (t *TCP) Dial(addr string) (Endpoint, error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("transport: dial %s: %w", addr, err)
	}
	e := &tcpEndpoint{
		conn:    conn,
		timeout: t.CallTimeout,
		stats:   &t.stats,
		writeCh: make(chan outFrame, 256),
		done:    make(chan struct{}),
		pending: map[uint64]chan callResult{},
	}
	go e.readLoop()
	go writeLoop(conn, e.writeCh, e.done, t.writeTimeout(), &t.stats, e.shutdown)
	return e, nil
}

type callResult struct {
	resp *wire.Message
	err  error
}

// waiterPool recycles the per-call response channels. A channel is only
// ever sent to once (delivery and map removal happen atomically under
// the endpoint mutex), so a drained channel is safe to reuse.
var waiterPool = sync.Pool{New: func() any { return make(chan callResult, 1) }}

func getWaiter() chan callResult { return waiterPool.Get().(chan callResult) }

// putWaiter drains a possibly raced delivery and recycles the channel.
func putWaiter(ch chan callResult) {
	select {
	case <-ch:
	default:
	}
	waiterPool.Put(ch)
}

// tcpEndpoint is the multiplexed client side of one connection. Any
// number of goroutines may Call concurrently: each call is assigned a
// frame ID, queued to the writer, and parked until the reader delivers
// the matching response. Close (or connection death) interrupts every
// pending call.
type tcpEndpoint struct {
	conn    net.Conn
	timeout time.Duration
	stats   *Stats
	writeCh chan outFrame
	done    chan struct{} // closed once on shutdown

	mu      sync.Mutex
	pending map[uint64]chan callResult
	nextID  uint64
	err     error // terminal error, set before done closes
	down    bool
}

// Call sends a message and waits for its response, with the transport's
// CallTimeout applied when configured.
func (e *tcpEndpoint) Call(m *wire.Message) (*wire.Message, error) {
	return e.CallContext(context.Background(), m)
}

// CallContext is Call bounded by a caller-supplied context: cancelling
// ctx abandons the wait (the response, if it still arrives, is
// discarded by the reader).
func (e *tcpEndpoint) CallContext(ctx context.Context, m *wire.Message) (*wire.Message, error) {
	ctx, obs := beginClientCall(ctx, m)
	resp, err := e.callContext(ctx, m)
	obs.end(m, err)
	return resp, err
}

func (e *tcpEndpoint) callContext(ctx context.Context, m *wire.Message) (*wire.Message, error) {
	// On error AppendTo returns the scratch buffer unmodified, so it
	// goes back to the pool instead of leaking.
	payload, err := m.AppendTo(wire.GetBuffer())
	if err != nil {
		wire.PutBuffer(payload)
		return nil, fmt.Errorf("transport: encoding request: %w", err)
	}
	ch := getWaiter()
	e.mu.Lock()
	if e.down {
		err := e.err
		e.mu.Unlock()
		putWaiter(ch)
		wire.PutBuffer(payload)
		return nil, err
	}
	e.nextID++
	id := e.nextID
	e.pending[id] = ch
	e.mu.Unlock()

	e.stats.InFlight.Add(1)
	defer e.stats.InFlight.Add(-1)

	select {
	case e.writeCh <- outFrame{id: id, payload: payload}:
	default:
		// Queue full (or endpoint dying): take the slow path.
		select {
		case e.writeCh <- outFrame{id: id, payload: payload}:
		case <-e.done:
			e.forget(id, ch)
			wire.PutBuffer(payload)
			return nil, e.terminalErr()
		case <-ctx.Done():
			e.forget(id, ch)
			wire.PutBuffer(payload)
			return nil, ctx.Err()
		}
	}

	var timeoutC <-chan time.Time
	if e.timeout > 0 {
		timer := time.NewTimer(e.timeout)
		defer timer.Stop()
		timeoutC = timer.C
	}
	select {
	case res := <-ch:
		putWaiter(ch)
		return res.resp, res.err
	case <-e.done:
		// The response may have been delivered in the same instant the
		// endpoint went down; prefer it.
		select {
		case res := <-ch:
			putWaiter(ch)
			return res.resp, res.err
		default:
		}
		e.forget(id, ch)
		return nil, e.terminalErr()
	case <-ctx.Done():
		e.forget(id, ch)
		return nil, ctx.Err()
	case <-timeoutC:
		e.forget(id, ch)
		return nil, fmt.Errorf("%w after %v", ErrCallTimeout, e.timeout)
	}
}

// forget abandons a pending call registration and recycles its waiter.
// Deliveries are atomic with map removal (both happen under mu), so
// after the delete either no result will ever arrive or it is already
// buffered in ch — putWaiter drains both cases.
func (e *tcpEndpoint) forget(id uint64, ch chan callResult) {
	e.mu.Lock()
	delete(e.pending, id)
	e.mu.Unlock()
	putWaiter(ch)
}

// terminalErr returns the error that took the endpoint down.
func (e *tcpEndpoint) terminalErr() error {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.err != nil {
		return e.err
	}
	return ErrClosed
}

// shutdown takes the endpoint down exactly once: it records the
// terminal error, closes the connection, and fails every pending call.
func (e *tcpEndpoint) shutdown(cause error) {
	e.mu.Lock()
	if e.down {
		e.mu.Unlock()
		return
	}
	e.down = true
	if cause == nil {
		cause = ErrClosed
	}
	e.err = cause
	// Deliver under the mutex: delivery and map removal must be atomic
	// so recycled waiter channels can never receive a stale result.
	for id, ch := range e.pending {
		delete(e.pending, id)
		ch <- callResult{nil, cause} // buffered: never blocks
	}
	e.mu.Unlock()
	close(e.done)
	e.conn.Close()
}

// readLoop demultiplexes response frames to their waiting callers.
func (e *tcpEndpoint) readLoop() {
	fr := wire.NewFrameReader(e.conn)
	for {
		f, err := fr.Next()
		if err != nil {
			e.shutdown(fmt.Errorf("transport: reading response: %w", err))
			return
		}
		e.stats.FramesReceived.Add(1)
		e.stats.BytesReceived.Add(uint64(len(f.Payload)) + 13)
		resp, derr := wire.UnmarshalMessage(f.Payload)
		wire.PutBuffer(f.Payload)
		if derr != nil {
			e.stats.DecodeErrors.Add(1)
			e.shutdown(fmt.Errorf("transport: decoding response: %w", derr))
			return
		}
		e.mu.Lock()
		if ch, ok := e.pending[f.ID]; ok {
			delete(e.pending, f.ID)
			ch <- callResult{resp, nil} // buffered: never blocks
		}
		e.mu.Unlock()
		// Responses without a waiter (timed out or cancelled calls) are
		// dropped.
	}
}

// Close interrupts every pending call with ErrClosed and releases the
// connection. It never waits for in-flight calls.
func (e *tcpEndpoint) Close() error {
	e.shutdown(ErrClosed)
	return nil
}
