package transport

import (
	"context"
	"errors"
	"fmt"
	"io"
	"net"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"partsvc/internal/wire"
)

// TCP is the network transport: v2 frames (request-ID multiplexed) of
// wire-encoded messages over TCP connections. Each endpoint keeps many
// calls in flight on one connection: producers link outbound frames
// onto a lock-free MPSC write queue (no channel locks on the enqueue
// path), a writer goroutine detaches the queue in batches, gathers
// them into a net.Buffers and hands the whole burst to the kernel
// with one writev (scatter-gather — no intermediate copy), a reader
// goroutine demultiplexes responses by frame ID back to the waiting
// callers. Servers decode requests zero-copy (slab-backed messages,
// released once the response is encoded) and dispatch handler
// invocations on a bounded worker pool behind a bounded admission
// queue: when both are full the request is answered immediately with a
// KindError backpressure reply (ErrOverloaded) instead of stalling the
// connection reader, so overload degrades gracefully.
//
// With Ring set, dials to addresses served by this same transport
// instance skip the socket entirely: the connection runs over a pair
// of shared-memory SPSC byte rings (see ring.go) with identical
// framing and semantics — the co-located fast path for components the
// planner placed on one node.
type TCP struct {
	// Workers bounds concurrent handler invocations per listener
	// (0 means DefaultWorkers()).
	Workers int
	// QueueDepth bounds requests queued for the worker pool per
	// listener (0 means defaultQueueDepth of the worker count). A
	// request arriving with the queue full is shed: answered with a
	// KindError reply carrying CodeOverloaded, without occupying a
	// worker.
	QueueDepth int
	// CallTimeout bounds each endpoint call (0 means no timeout).
	CallTimeout time.Duration
	// WriteTimeout bounds each write flush on a connection (0 means
	// DefaultWriteTimeout). A peer that stops reading makes the flush
	// miss this deadline, which kills the connection instead of
	// blocking its writer goroutine forever. Ring connections apply
	// the same deadline to ring writes.
	WriteTimeout time.Duration
	// ZeroCopyResponses makes endpoints decode responses zero-copy:
	// returned messages are slab-backed (wire.UnmarshalMessageSlab),
	// so the caller should wire.Message.Release them when done to keep
	// the buffer pool hot. Off by default because released messages
	// must not be used afterwards; turn it on for high-rate callers
	// that own their responses end to end.
	ZeroCopyResponses bool
	// Ring enables the co-located fast path: Dial checks whether the
	// address is served by this transport instance and, if so, wires
	// the endpoint over shared-memory rings instead of a socket. A
	// miss (remote address) falls back to TCP transparently, so the
	// flag is safe to set unconditionally on co-locatable components.
	Ring bool
	// RingSize is the per-direction ring capacity in bytes for ring
	// connections (0 means DefaultRingSize; rounded up to a power of
	// two). Frames larger than the ring stream through it like a
	// socket buffer.
	RingSize int

	stats Stats

	// local indexes this instance's live listeners by address, so a
	// Ring dial can detect co-location without touching the network.
	mu    sync.Mutex
	local map[string]*tcpListener
}

// wireConn is the byte carrier under one connection: a real socket or
// an in-process ring pair. Everything above it — framing, the MPSC
// write queue, slab decode, admission control — is carrier-agnostic.
type wireConn interface {
	io.ReadWriteCloser
	SetWriteDeadline(t time.Time) error
}

// vectorWriter is the optional gather-write fast path of a wireConn.
// net.Buffers.WriteTo already does real writev on sockets; ring
// connections implement this instead so a batch is one publish + one
// wake rather than one Write per slice.
type vectorWriter interface {
	writeBuffers(bufs [][]byte) (int64, error)
}

// DefaultWorkers returns the default per-listener handler pool size:
// 4× GOMAXPROCS, read at call time — a container whose CPU limit (and
// with it GOMAXPROCS) is adjusted after package init still gets the
// right pool size for listeners created afterwards.
func DefaultWorkers() int { return 4 * runtime.GOMAXPROCS(0) }

// defaultQueueDepth sizes the admission queue for a worker pool: deep
// enough to absorb bursts several times the pool, shallow enough that
// queue wait — not timeout collapse — is the overload signal.
func defaultQueueDepth(workers int) int {
	if q := 4 * workers; q > 256 {
		return q
	}
	return 256
}

// DefaultWriteTimeout is the default per-flush write deadline.
var DefaultWriteTimeout = 10 * time.Second

// ErrCallTimeout reports a call that exceeded the transport's
// CallTimeout while waiting for its response.
var ErrCallTimeout = errors.New("transport: call timed out")

// errStalled reports a connection killed because its peer stopped
// draining responses (runaway write queue or missed write deadline).
var errStalled = errors.New("transport: peer not reading responses")

// stallLimit is the write-queue depth past which a server connection
// is declared stalled. Healthy peers keep the queue near the writer's
// batch size; a queue this deep means the peer has stopped reading
// (the write deadline is the second, slower tripwire).
const stallLimit = 1024

func (t *TCP) writeTimeout() time.Duration {
	if t.WriteTimeout > 0 {
		return t.WriteTimeout
	}
	return DefaultWriteTimeout
}

// NewTCP returns the TCP transport.
func NewTCP() *TCP { return &TCP{} }

// Stats returns a snapshot of the transport's data-plane counters.
func (t *TCP) Stats() StatsSnapshot { return t.stats.Snapshot() }

// outFrame is one frame queued for a connection's writer goroutine.
// Payloads come from the wire buffer pool and are returned to it after
// the write (or on shutdown). Responses to v1 requests set v1 so the
// reply goes out in the framing the peer can decode.
type outFrame struct {
	id      uint64
	payload []byte
	v1      bool
}

// maxWriteBatch bounds the frames gathered into one writev: it caps
// the header scratch buffer and keeps a firehose connection from
// starving the writer's close check.
const maxWriteBatch = 256

// maxCoalesceYields bounds how many scheduler yields the writer takes
// while its batch keeps growing before committing to a writev.
const maxCoalesceYields = 3

// writeLoop owns the write half of a connection. It detaches every
// frame linked onto the MPSC queue while a write is pending into one
// net.Buffers and writes the whole burst with a single writev: frame
// headers are encoded into a reusable scratch buffer, payloads go to
// the kernel from their pooled buffers directly, so a burst of N
// frames is one syscall and zero intermediate copies. Every batch runs
// under a write deadline: a peer that stops reading fails the writev
// within timeout instead of pinning this goroutine (and anyone waiting
// on it) forever. When the queue closes it drains what is linked,
// writes, and exits. The first write error is reported through onErr
// (at most once) and stops the loop.
func writeLoop(conn wireConn, q *writeQueue, timeout time.Duration, stats *Stats, onErr func(error)) {
	var (
		batch = make([]outFrame, 0, maxWriteBatch)
		hdrs  = make([]byte, 0, wire.FrameHeaderLenV2*maxWriteBatch)
		iov   = make(net.Buffers, 0, 2*maxWriteBatch)
		// deadline is the write deadline currently set on conn. It is
		// refreshed only once it has less than half the timeout left,
		// so the per-flush cost is usually a clock read, not a runtime
		// timer modification. A stalled peer still fails within
		// [timeout/2, timeout].
		deadline time.Time
	)
	recycle := func() {
		for i := range batch {
			wire.PutBuffer(batch[i].payload)
		}
		batch = batch[:0]
	}
	fail := func(err error) {
		recycle()
		onErr(err)
		q.drain(func(f outFrame) { wire.PutBuffer(f.payload) })
	}
	// flush writevs the gathered batch. hdrs never grows past its
	// initial capacity (batch is bounded by maxWriteBatch), so the
	// header slices handed to iov stay valid.
	flush := func() error {
		if len(batch) == 0 {
			return nil
		}
		stats.WriteBatch.Observe(float64(len(batch)))
		hdrs = hdrs[:0]
		iov = iov[:0]
		var n uint64
		for i := range batch {
			f := &batch[i]
			if len(f.payload) > wire.MaxFrame {
				return wire.ErrFrameTooLarge
			}
			start := len(hdrs)
			if f.v1 {
				hdrs = wire.AppendFrameHeaderV1(hdrs, len(f.payload))
			} else {
				hdrs = wire.AppendFrameHeader(hdrs, f.id, len(f.payload))
			}
			iov = append(iov, hdrs[start:], f.payload)
			n += uint64(len(hdrs)-start) + uint64(len(f.payload))
		}
		if now := time.Now(); now.Add(timeout / 2).After(deadline) {
			deadline = now.Add(timeout)
			conn.SetWriteDeadline(deadline)
		}
		// WriteTo consumes (and may modify) the slice it is given, so
		// hand it a view; the batch keeps the payloads for recycling.
		// Ring connections take the gather list whole instead.
		if vw, ok := conn.(vectorWriter); ok {
			if _, err := vw.writeBuffers(iov); err != nil {
				return err
			}
		} else {
			w := iov
			if _, err := (&w).WriteTo(conn); err != nil {
				return err
			}
		}
		stats.FramesSent.Add(int64(len(batch)))
		stats.BytesSent.Add(int64(n))
		recycle()
		return nil
	}
	for {
		batch = q.popBatch(batch[:0], maxWriteBatch)
		if len(batch) == 0 {
			if q.isClosed() {
				// Final drain: write frames linked before the close,
				// still under a deadline so a dead peer cannot block
				// teardown.
				for {
					batch = q.popBatch(batch[:0], maxWriteBatch)
					if len(batch) == 0 {
						return
					}
					if err := flush(); err != nil {
						fail(err)
						return
					}
				}
			}
			q.wait()
			continue
		}
		// Scheduler yields before committing to a syscall: on a busy
		// endpoint the producers that woke this loop are often still
		// runnable with more frames to queue, and letting them run
		// turns N near-empty writevs into one large one. Keep
		// yielding while each yield actually grows the batch (up to
		// maxCoalesceYields), then write. When idle a yield costs a
		// few hundred nanoseconds; under load this halves (or
		// better) the syscall count.
		for y := 0; y < maxCoalesceYields && len(batch) < maxWriteBatch; y++ {
			before := len(batch)
			runtime.Gosched()
			batch = q.popBatch(batch, maxWriteBatch)
			if len(batch) == before {
				break
			}
		}
		if err := flush(); err != nil {
			fail(err)
			return
		}
	}
}

// Serve listens on addr ("host:port"; empty means "127.0.0.1:0") and
// dispatches incoming messages to h on a bounded worker pool.
func (t *TCP) Serve(addr string, h Handler) (Listener, error) {
	if addr == "" {
		addr = "127.0.0.1:0"
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("transport: listen %s: %w", addr, err)
	}
	workers := t.Workers
	if workers <= 0 {
		workers = DefaultWorkers()
	}
	depth := t.QueueDepth
	if depth <= 0 {
		depth = defaultQueueDepth(workers)
	}
	l := &tcpListener{
		t:            t,
		ln:           ln,
		h:            h,
		conns:        map[wireConn]struct{}{},
		dispatch:     make(chan dispatchReq, depth),
		quit:         make(chan struct{}),
		writeTimeout: t.writeTimeout(),
		stats:        &t.stats,
	}
	// The bounded worker pool: persistent goroutines shared by every
	// connection, so a request costs a queue hop, not a goroutine spawn,
	// and one slow handler can never occupy more than its worker.
	for i := 0; i < workers; i++ {
		go l.worker()
	}
	go l.acceptLoop()
	t.mu.Lock()
	if t.local == nil {
		t.local = map[string]*tcpListener{}
	}
	t.local[l.Addr()] = l
	t.mu.Unlock()
	return l, nil
}

// lookupLocal returns the live listener this instance serves on addr,
// or nil — the co-location test behind the Ring fast path.
func (t *TCP) lookupLocal(addr string) *tcpListener {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.local[addr]
}

func (t *TCP) forgetListener(addr string) {
	t.mu.Lock()
	delete(t.local, addr)
	t.mu.Unlock()
}

// dispatchReq is one handler invocation queued to the worker pool.
type dispatchReq struct {
	req      *wire.Message
	frameID  uint64
	frameV1  bool           // request arrived v1-framed: reply v1-framed
	enqueue  func(outFrame) // parks the response on the request's connection
	queuedAt time.Time      // admission time when sampled; zero when not
}

type tcpListener struct {
	t            *TCP
	ln           net.Listener
	h            Handler
	dispatch     chan dispatchReq // bounded admission queue feeding the pool
	quit         chan struct{}    // closed when the listener closes
	writeTimeout time.Duration
	stats        *Stats

	mu     sync.Mutex
	conns  map[wireConn]struct{}
	closed bool
}

// worker drains the dispatch queue until the listener closes.
func (l *tcpListener) worker() {
	for {
		// Fast path: while the queue has work, a single-channel receive
		// with default is far cheaper than the two-case select below, and
		// a loaded queue is exactly when per-dispatch overhead matters.
		// Shutdown is still prompt — the fast path only runs while
		// requests keep arriving, and the slow path watches quit.
		select {
		case d := <-l.dispatch:
			l.serveOne(d)
			continue
		default:
		}
		select {
		case d := <-l.dispatch:
			l.serveOne(d)
		case <-l.quit:
			return
		}
	}
}

// serveOne runs a single queued request through the handler and parks
// the encoded response on its connection's writer.
func (l *tcpListener) serveOne(d dispatchReq) {
	l.stats.QueueDepth.Add(-1)
	if !d.queuedAt.IsZero() {
		l.stats.QueueWait.Observe(float64(time.Since(d.queuedAt)) / float64(time.Millisecond))
	}
	resp := serveObserved(l.h, d.req)
	if resp == nil {
		resp = ErrorResponse(d.req, "handler returned nil")
	}
	// AppendTo returns the scratch buffer unmodified on error, so the
	// pooled buffer is reused for the error response instead of leaking.
	buf, err := resp.AppendTo(wire.GetBuffer())
	if err != nil {
		buf, _ = ErrorResponse(d.req, "encoding response: %v", err).AppendTo(buf[:0])
	}
	// The response is encoded; the request's slab (which the response
	// may alias) can go back to the pool.
	d.req.Release()
	d.enqueue(outFrame{id: d.frameID, payload: buf, v1: d.frameV1})
}

func (l *tcpListener) Addr() string { return l.ln.Addr().String() }

func (l *tcpListener) Close() error {
	l.t.forgetListener(l.Addr())
	l.mu.Lock()
	already := l.closed
	l.closed = true
	conns := make([]wireConn, 0, len(l.conns))
	for c := range l.conns {
		conns = append(conns, c)
	}
	l.mu.Unlock()
	if !already {
		close(l.quit) // releases the worker pool
	}
	err := l.ln.Close()
	for _, c := range conns {
		c.Close()
	}
	return err
}

func (l *tcpListener) acceptLoop() {
	for {
		conn, err := l.ln.Accept()
		if err != nil {
			return // listener closed
		}
		if !l.adopt(conn) {
			conn.Close()
			return
		}
	}
}

// adopt registers a connection (socket or ring) and starts serving it.
// false means the listener has already closed.
func (l *tcpListener) adopt(conn wireConn) bool {
	l.mu.Lock()
	if l.closed {
		l.mu.Unlock()
		return false
	}
	l.conns[conn] = struct{}{}
	l.mu.Unlock()
	go l.serveConn(conn)
	return true
}

// serveConn reads frames, admits each request to the bounded dispatch
// queue, and queues responses (tagged with the request's frame ID and
// echoing its frame version) to the connection's MPSC write queue.
// Requests are decoded zero-copy: the slab backing a message is
// released by the worker once the response is encoded. When the
// admission queue is full the request is shed — answered with a
// CodeOverloaded KindError built right here on the reader, bypassing
// the saturated pool — so the reader never stalls and the peer learns
// immediately. A frame that fails to decode gets a best-effort final
// error response before the connection drops, and bumps the
// transport_decode_errors counter.
func (l *tcpListener) serveConn(conn wireConn) {
	q := newWriteQueue(l.stats)
	writerDone := make(chan struct{})
	var connDown atomic.Bool
	var deadOnce sync.Once
	// markDead also closes the connection: it unblocks a writer parked
	// in conn.Write and makes the read loop exit, so one failed half
	// tears the whole connection down promptly.
	markDead := func(error) {
		deadOnce.Do(func() {
			connDown.Store(true)
			conn.Close()
		})
	}
	go func() {
		defer close(writerDone)
		writeLoop(conn, q, l.writeTimeout, l.stats, markDead)
	}()

	// enqueue parks a response on the writer's MPSC queue unless the
	// connection has already failed. It NEVER blocks: the pool workers
	// are shared by every connection, so a peer that sends requests but
	// stops reading responses (runaway write queue behind a stalled
	// writer) must cost this connection its life, not stall the whole
	// listener.
	enqueue := func(f outFrame) {
		if connDown.Load() || !q.push(f) {
			// Already dead (or the queue closed under teardown): the
			// writer is gone, just drop the frame.
			wire.PutBuffer(f.payload)
			return
		}
		if q.len() > stallLimit {
			markDead(errStalled)
		}
	}

	fr := wire.NewFrameReader(conn)
	// Queue-wait is sampled 1-in-8 per connection (the first request is
	// always sampled) so the hot path usually skips the clock read; the
	// admitted/shed counters stay exact.
	var reqSeq uint64
readLoop:
	for {
		f, err := fr.Next()
		if err != nil {
			if isDecodeFraming(err) {
				// Corrupt framing: nothing to correlate a response to.
				l.stats.DecodeErrors.Add(1)
			}
			break
		}
		hdrLen := uint64(wire.FrameHeaderLenV2)
		if f.Version == wire.FrameV1 {
			hdrLen = wire.FrameHeaderLenV1
		}
		l.stats.FramesReceived.Add(1)
		l.stats.BytesReceived.Add(int64(uint64(len(f.Payload)) + hdrLen))
		frameV1 := f.Version == wire.FrameV1
		req, derr := wire.UnmarshalMessageSlab(f.Payload)
		if derr != nil {
			// The frame was well-formed but the message was not: tell
			// the caller (correlated by frame ID) before dropping the
			// connection instead of dying silently. The decoder left
			// payload ownership with us.
			wire.PutBuffer(f.Payload)
			l.stats.DecodeErrors.Add(1)
			buf, _ := ErrorResponse(&wire.Message{}, "decoding request: %v", derr).AppendTo(wire.GetBuffer())
			enqueue(outFrame{id: f.ID, payload: buf, v1: frameV1})
			break
		}
		d := dispatchReq{req: req, frameID: f.ID, frameV1: frameV1, enqueue: enqueue}
		if reqSeq&7 == 0 {
			d.queuedAt = time.Now()
		}
		reqSeq++
		select {
		case l.dispatch <- d:
			l.stats.QueueDepth.Add(1)
		default:
			select {
			case <-l.quit:
				req.Release()
				break readLoop
			default:
			}
			// Admission queue full: shed. The backpressure reply is
			// encoded on this goroutine — it must not touch the
			// saturated pool — and the peer gets it at write speed.
			l.stats.Shed.Add(1)
			buf, _ := OverloadResponse(req).AppendTo(wire.GetBuffer())
			req.Release()
			enqueue(outFrame{id: f.ID, payload: buf, v1: frameV1})
		}
	}
	// Flush whatever responses are already queued, then cut loose any
	// handler still trying to enqueue one. The writer's final drain runs
	// under a write deadline, so a peer that half-closed its read side
	// without draining responses cannot pin this goroutine (or leak the
	// connection) past writeTimeout.
	q.close()
	<-writerDone
	markDead(nil)
	l.mu.Lock()
	delete(l.conns, conn)
	l.mu.Unlock()
	conn.Close()
}

// isDecodeFraming reports whether a frame-read error indicates corrupt
// framing rather than a clean close or I/O failure.
func isDecodeFraming(err error) bool {
	return errors.Is(err, wire.ErrFrameTooLarge) || errors.Is(err, wire.ErrFrameVersion)
}

// Dial connects to a served address. With Ring set and the address
// served by this same transport instance, the endpoint comes back
// wired over shared-memory rings instead of a socket (identical
// semantics, no syscalls); otherwise it is a TCP connection.
func (t *TCP) Dial(addr string) (Endpoint, error) {
	if t.Ring {
		if l := t.lookupLocal(addr); l != nil {
			if e, ok := t.dialRing(l); ok {
				return e, nil
			}
			// Listener closed between lookup and adopt: fall through to
			// the socket path for the dial-refused error.
		}
	}
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("transport: dial %s: %w", addr, err)
	}
	return t.newEndpoint(conn), nil
}

// dialRing wires an endpoint to a co-located listener over a fresh
// ring pair. false means the listener refused (already closed).
func (t *TCP) dialRing(l *tcpListener) (Endpoint, bool) {
	cli, srv := newRingPair(t.RingSize, &t.stats)
	if !l.adopt(srv) {
		return nil, false
	}
	t.stats.RingConns.Add(1)
	return t.newEndpoint(cli), true
}

// newEndpoint builds the multiplexed client side over an established
// byte carrier and starts its reader and writer goroutines.
func (t *TCP) newEndpoint(conn wireConn) *tcpEndpoint {
	e := &tcpEndpoint{
		conn:     conn,
		timeout:  t.CallTimeout,
		zeroCopy: t.ZeroCopyResponses,
		stats:    &t.stats,
		q:        newWriteQueue(&t.stats),
		done:     make(chan struct{}),
		pending:  map[uint64]chan callResult{},
	}
	go e.readLoop()
	go writeLoop(conn, e.q, t.writeTimeout(), &t.stats, e.shutdown)
	return e
}

type callResult struct {
	resp *wire.Message
	err  error
}

// waiterPool recycles the per-call response channels. A channel is only
// ever sent to once (delivery and map removal happen atomically under
// the endpoint mutex), so a drained channel is safe to reuse.
var waiterPool = sync.Pool{New: func() any { return make(chan callResult, 1) }}

func getWaiter() chan callResult { return waiterPool.Get().(chan callResult) }

// putWaiter drains a possibly raced delivery and recycles the channel.
func putWaiter(ch chan callResult) {
	select {
	case res := <-ch:
		if res.resp != nil {
			res.resp.Release() // zero-copy response nobody will read
		}
	default:
	}
	waiterPool.Put(ch)
}

// timerPool recycles call-timeout timers so the common case of a Call
// is not a runtime timer allocation. Only timers whose Stop() returns
// true are pooled: that guarantees (under any Go timer semantics) the
// timer never fired, its channel is empty, and Reset on reuse cannot
// deliver a stale expiry. Fired timers — the rare timeout path — are
// simply dropped for the GC.
var timerPool sync.Pool

func getTimer(d time.Duration) *time.Timer {
	if t, _ := timerPool.Get().(*time.Timer); t != nil {
		t.Reset(d)
		return t
	}
	return time.NewTimer(d)
}

func putTimer(t *time.Timer) {
	if t.Stop() {
		timerPool.Put(t)
	}
}

// tcpEndpoint is the multiplexed client side of one connection (socket
// or ring). Any number of goroutines may Call concurrently: each call
// is assigned a frame ID, linked onto the writer's MPSC queue, and
// parked until the reader delivers the matching response. Close (or
// connection death) interrupts every pending call.
type tcpEndpoint struct {
	conn     wireConn
	timeout  time.Duration
	zeroCopy bool
	stats    *Stats
	q        *writeQueue
	done     chan struct{} // closed once on shutdown

	mu      sync.Mutex
	pending map[uint64]chan callResult
	nextID  uint64
	err     error // terminal error, set before done closes
	down    bool
}

// Call sends a message and waits for its response, with the transport's
// CallTimeout applied when configured.
func (e *tcpEndpoint) Call(m *wire.Message) (*wire.Message, error) {
	return e.CallContext(context.Background(), m)
}

// CallContext is Call bounded by a caller-supplied context: cancelling
// ctx abandons the wait (the response, if it still arrives, is
// discarded by the reader).
func (e *tcpEndpoint) CallContext(ctx context.Context, m *wire.Message) (*wire.Message, error) {
	ctx, obs := beginClientCall(ctx, m)
	resp, err := e.callContext(ctx, m)
	obs.end(m, err)
	return resp, err
}

func (e *tcpEndpoint) callContext(ctx context.Context, m *wire.Message) (*wire.Message, error) {
	// On error AppendTo returns the scratch buffer unmodified, so it
	// goes back to the pool instead of leaking.
	payload, err := m.AppendTo(wire.GetBuffer())
	if err != nil {
		wire.PutBuffer(payload)
		return nil, fmt.Errorf("transport: encoding request: %w", err)
	}
	ch := getWaiter()
	e.mu.Lock()
	if e.down {
		err := e.err
		e.mu.Unlock()
		putWaiter(ch)
		wire.PutBuffer(payload)
		return nil, err
	}
	e.nextID++
	id := e.nextID
	e.pending[id] = ch
	e.mu.Unlock()

	e.stats.InFlight.Add(1)
	defer e.stats.InFlight.Add(-1)

	// The single enqueue path: the MPSC push never blocks (callers are
	// naturally bounded — each has at most one frame outstanding), so
	// the only slow path is an endpoint already torn down.
	if !e.enqueueFrame(outFrame{id: id, payload: payload}) {
		e.forget(id, ch)
		return nil, e.terminalErr()
	}

	var timeoutC <-chan time.Time
	if e.timeout > 0 {
		timer := getTimer(e.timeout)
		defer putTimer(timer)
		timeoutC = timer.C
	}
	// The common case (background context) waits on three channels; the
	// four-case select only runs when the caller brought a cancelable
	// context. selectgo scans nil cases too, so the split is not free to
	// skip.
	if ctxDone := ctx.Done(); ctxDone != nil {
		select {
		case res := <-ch:
			putWaiter(ch)
			return res.resp, res.err
		case <-e.done:
			return e.downResult(id, ch)
		case <-ctxDone:
			e.forget(id, ch)
			return nil, ctx.Err()
		case <-timeoutC:
			e.forget(id, ch)
			return nil, fmt.Errorf("%w after %v", ErrCallTimeout, e.timeout)
		}
	}
	select {
	case res := <-ch:
		putWaiter(ch)
		return res.resp, res.err
	case <-e.done:
		return e.downResult(id, ch)
	case <-timeoutC:
		e.forget(id, ch)
		return nil, fmt.Errorf("%w after %v", ErrCallTimeout, e.timeout)
	}
}

// enqueueFrame links one request frame onto the writer's queue. On
// refusal (endpoint torn down) it recycles the payload and returns
// false; the caller resolves the error.
func (e *tcpEndpoint) enqueueFrame(f outFrame) bool {
	if e.q.push(f) {
		return true
	}
	wire.PutBuffer(f.payload)
	return false
}

// downResult resolves a call that lost the race with endpoint teardown:
// the response may have been delivered in the same instant the endpoint
// went down, and if so it is preferred over the terminal error.
func (e *tcpEndpoint) downResult(id uint64, ch chan callResult) (*wire.Message, error) {
	select {
	case res := <-ch:
		putWaiter(ch)
		return res.resp, res.err
	default:
	}
	e.forget(id, ch)
	return nil, e.terminalErr()
}

// forget abandons a pending call registration and recycles its waiter.
// Deliveries are atomic with map removal (both happen under mu), so
// after the delete either no result will ever arrive or it is already
// buffered in ch — putWaiter drains both cases.
func (e *tcpEndpoint) forget(id uint64, ch chan callResult) {
	e.mu.Lock()
	delete(e.pending, id)
	e.mu.Unlock()
	putWaiter(ch)
}

// terminalErr returns the error that took the endpoint down.
func (e *tcpEndpoint) terminalErr() error {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.err != nil {
		return e.err
	}
	return ErrClosed
}

// shutdown takes the endpoint down exactly once: it records the
// terminal error, closes the connection and write queue, and fails
// every pending call.
func (e *tcpEndpoint) shutdown(cause error) {
	e.mu.Lock()
	if e.down {
		e.mu.Unlock()
		return
	}
	e.down = true
	if cause == nil {
		cause = ErrClosed
	}
	e.err = cause
	// Deliver under the mutex: delivery and map removal must be atomic
	// so recycled waiter channels can never receive a stale result.
	for id, ch := range e.pending {
		delete(e.pending, id)
		ch <- callResult{nil, cause} // buffered: never blocks
	}
	e.mu.Unlock()
	close(e.done)
	e.q.close()
	e.conn.Close()
}

// readLoop demultiplexes response frames to their waiting callers.
func (e *tcpEndpoint) readLoop() {
	fr := wire.NewFrameReader(e.conn)
	for {
		f, err := fr.Next()
		if err != nil {
			e.shutdown(fmt.Errorf("transport: reading response: %w", err))
			return
		}
		e.stats.FramesReceived.Add(1)
		e.stats.BytesReceived.Add(int64(len(f.Payload)) + wire.FrameHeaderLenV2)
		var resp *wire.Message
		var derr error
		if e.zeroCopy {
			// Slab decode: the payload buffer transfers to the slab;
			// the caller receiving the response owns the reference and
			// should Release it (unreleased messages are merely
			// garbage collected, costing pool hits, never correctness).
			resp, derr = wire.UnmarshalMessageSlab(f.Payload)
			if derr != nil {
				wire.PutBuffer(f.Payload)
			}
		} else {
			resp, derr = wire.UnmarshalMessage(f.Payload)
			wire.PutBuffer(f.Payload)
		}
		if derr != nil {
			e.stats.DecodeErrors.Add(1)
			e.shutdown(fmt.Errorf("transport: decoding response: %w", derr))
			return
		}
		e.mu.Lock()
		if ch, ok := e.pending[f.ID]; ok {
			delete(e.pending, f.ID)
			ch <- callResult{resp, nil} // buffered: never blocks
			e.mu.Unlock()
			continue
		}
		e.mu.Unlock()
		// Responses without a waiter (timed out or cancelled calls) are
		// dropped; release reclaims a slab-backed one immediately.
		resp.Release()
	}
}

// Close interrupts every pending call with ErrClosed and releases the
// connection. It never waits for in-flight calls.
func (e *tcpEndpoint) Close() error {
	e.shutdown(ErrClosed)
	return nil
}
