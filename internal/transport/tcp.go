package transport

import (
	"fmt"
	"net"
	"sync"

	"partsvc/internal/wire"
)

// TCP is the network transport: frames of wire-encoded messages over
// TCP connections. Each accepted connection is served by its own
// goroutine; each endpoint serializes its calls over one connection.
type TCP struct{}

// NewTCP returns the TCP transport.
func NewTCP() *TCP { return &TCP{} }

// Serve listens on addr ("host:port"; empty means "127.0.0.1:0") and
// dispatches incoming messages to h.
func (t *TCP) Serve(addr string, h Handler) (Listener, error) {
	if addr == "" {
		addr = "127.0.0.1:0"
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("transport: listen %s: %w", addr, err)
	}
	l := &tcpListener{ln: ln, h: h, conns: map[net.Conn]struct{}{}}
	go l.acceptLoop()
	return l, nil
}

type tcpListener struct {
	ln     net.Listener
	h      Handler
	mu     sync.Mutex
	conns  map[net.Conn]struct{}
	closed bool
}

func (l *tcpListener) Addr() string { return l.ln.Addr().String() }

func (l *tcpListener) Close() error {
	l.mu.Lock()
	l.closed = true
	conns := make([]net.Conn, 0, len(l.conns))
	for c := range l.conns {
		conns = append(conns, c)
	}
	l.mu.Unlock()
	err := l.ln.Close()
	for _, c := range conns {
		c.Close()
	}
	return err
}

func (l *tcpListener) acceptLoop() {
	for {
		conn, err := l.ln.Accept()
		if err != nil {
			return // listener closed
		}
		l.mu.Lock()
		if l.closed {
			l.mu.Unlock()
			conn.Close()
			return
		}
		l.conns[conn] = struct{}{}
		l.mu.Unlock()
		go l.serveConn(conn)
	}
}

func (l *tcpListener) serveConn(conn net.Conn) {
	defer func() {
		l.mu.Lock()
		delete(l.conns, conn)
		l.mu.Unlock()
		conn.Close()
	}()
	for {
		frame, err := wire.ReadFrame(conn)
		if err != nil {
			return // closed or corrupt; drop the connection
		}
		req, err := wire.UnmarshalMessage(frame)
		if err != nil {
			return
		}
		resp := l.h.Handle(req)
		if resp == nil {
			resp = ErrorResponse(req, "handler returned nil")
		}
		data, err := resp.Marshal()
		if err != nil {
			data, _ = ErrorResponse(req, "encoding response: %v", err).Marshal()
		}
		if err := wire.WriteFrame(conn, data); err != nil {
			return
		}
	}
}

// Dial connects to a served TCP address.
func (t *TCP) Dial(addr string) (Endpoint, error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("transport: dial %s: %w", addr, err)
	}
	return &tcpEndpoint{conn: conn}, nil
}

type tcpEndpoint struct {
	mu     sync.Mutex
	conn   net.Conn
	closed bool
}

func (e *tcpEndpoint) Call(m *wire.Message) (*wire.Message, error) {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.closed {
		return nil, ErrClosed
	}
	data, err := m.Marshal()
	if err != nil {
		return nil, fmt.Errorf("transport: encoding request: %w", err)
	}
	if err := wire.WriteFrame(e.conn, data); err != nil {
		return nil, err
	}
	frame, err := wire.ReadFrame(e.conn)
	if err != nil {
		return nil, fmt.Errorf("transport: reading response: %w", err)
	}
	return wire.UnmarshalMessage(frame)
}

func (e *tcpEndpoint) Close() error {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.closed {
		return nil
	}
	e.closed = true
	return e.conn.Close()
}
