// Package transport carries wire.Messages between framework pieces. It
// abstracts the communication substrate behind small Endpoint/Listener
// interfaces with two implementations: in-process (for tests and
// single-machine examples) and TCP (for real deployments). The
// discrete-event simulator plays the same role for benchmarks via the
// internal/bench harness.
package transport

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"sync"
	"time"

	"partsvc/internal/wire"
)

// Handler processes one message and returns the response. Handlers must
// be safe for concurrent use: transports may deliver messages from
// multiple connections at once.
type Handler interface {
	Handle(m *wire.Message) *wire.Message
}

// HandlerFunc adapts a function to the Handler interface.
type HandlerFunc func(m *wire.Message) *wire.Message

// Handle calls f.
func (f HandlerFunc) Handle(m *wire.Message) *wire.Message { return f(m) }

// Endpoint is a client connection to a served address. Endpoints are
// safe for concurrent use: multiplexed transports keep every
// concurrent Call in flight at once, and Close interrupts calls still
// waiting with ErrClosed.
type Endpoint interface {
	// Call sends a message and waits for the response.
	Call(m *wire.Message) (*wire.Message, error)
	// Close releases the endpoint.
	Close() error
}

// ContextEndpoint is implemented by endpoints whose calls can be
// bounded by a caller-supplied context.
type ContextEndpoint interface {
	Endpoint
	// CallContext is Call, abandoned when ctx is cancelled.
	CallContext(ctx context.Context, m *wire.Message) (*wire.Message, error)
}

// Call invokes ep with ctx when the endpoint supports cancellation and
// falls back to a plain Call otherwise.
func Call(ctx context.Context, ep Endpoint, m *wire.Message) (*wire.Message, error) {
	if ce, ok := ep.(ContextEndpoint); ok {
		return ce.CallContext(ctx, m)
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	return ep.Call(m)
}

// Listener is a served address.
type Listener interface {
	// Addr returns the address clients dial.
	Addr() string
	// Close stops serving.
	Close() error
}

// Transport binds Serve and Dial over one substrate.
type Transport interface {
	// Serve registers a handler, returning its listener. An empty addr
	// requests an automatically assigned address.
	Serve(addr string, h Handler) (Listener, error)
	// Dial connects to a served address.
	Dial(addr string) (Endpoint, error)
}

// ErrClosed reports use of a closed endpoint or listener.
var ErrClosed = errors.New("transport: closed")

// ErrNoSuchAddr reports a dial to an unserved in-process address.
var ErrNoSuchAddr = errors.New("transport: no such address")

// ErrOverloaded reports a request shed by server-side admission
// control: the handler pool and its bounded queue were both full, so
// the server refused the request immediately instead of queueing it
// into timeout collapse. The server is alive — callers should back off
// and retry, and health probers must NOT count it as a failure.
// AsError wraps shed replies (CodeOverloaded) in this sentinel, so
// errors.Is(err, ErrOverloaded) identifies them.
var ErrOverloaded = errors.New("transport: server overloaded")

// CodeOverloaded is the Meta["code"] value marking a KindError reply
// produced by admission-control shedding.
const CodeOverloaded = "overloaded"

// ErrorResponse builds a KindError reply carrying a message.
func ErrorResponse(req *wire.Message, format string, args ...any) *wire.Message {
	return &wire.Message{
		Kind:   wire.KindError,
		ID:     req.ID,
		Target: req.Target,
		Method: req.Method,
		Meta:   map[string]string{"error": fmt.Sprintf(format, args...)},
	}
}

// OverloadResponse builds the backpressure reply for a shed request: a
// KindError tagged CodeOverloaded. Servers encode it on the connection
// reader itself — the whole point is that it must not touch the
// saturated worker pool.
func OverloadResponse(req *wire.Message) *wire.Message {
	return &wire.Message{
		Kind:   wire.KindError,
		ID:     req.ID,
		Target: req.Target,
		Method: req.Method,
		Meta: map[string]string{
			"error": "server overloaded: request shed before dispatch",
			"code":  CodeOverloaded,
		},
	}
}

// AsError converts a KindError response into a Go error (nil
// otherwise). Shed replies (CodeOverloaded) come back wrapped in
// ErrOverloaded. The returned error owns its text even when resp is a
// zero-copy message whose fields alias a slab, so it stays valid after
// the response is released.
func AsError(resp *wire.Message) error {
	if resp == nil || resp.Kind != wire.KindError {
		return nil
	}
	msg := ""
	if resp.Meta != nil {
		msg = resp.Meta["error"]
		if resp.Meta["code"] == CodeOverloaded {
			if msg == "" {
				return ErrOverloaded
			}
			return fmt.Errorf("%w: %s", ErrOverloaded, msg)
		}
	}
	if msg != "" {
		return errors.New(strings.Clone(msg))
	}
	return errors.New("transport: remote error")
}

// Clock abstracts time so components run identically on the wall clock
// and in the simulator.
type Clock interface {
	// NowMS returns the current time in milliseconds (monotonic origin
	// unspecified).
	NowMS() float64
}

// RealClock is the wall-clock implementation of Clock.
type RealClock struct{ start time.Time }

// NewRealClock returns a Clock reading the wall clock from a fixed
// origin.
func NewRealClock() *RealClock { return &RealClock{start: time.Now()} }

// NowMS returns milliseconds since the clock was created.
func (c *RealClock) NowMS() float64 { return float64(time.Since(c.start)) / float64(time.Millisecond) }

// InProc is an in-process transport: handlers are invoked directly on
// the caller's goroutine, so calls from different goroutines proceed
// concurrently exactly as they do over the multiplexed TCP transport.
// The zero value is not usable; use NewInProc.
type InProc struct {
	mu       sync.RWMutex
	handlers map[string]Handler
	next     int
	stats    Stats
}

// NewInProc returns an empty in-process transport.
func NewInProc() *InProc { return &InProc{handlers: map[string]Handler{}} }

// Stats returns a snapshot of the transport's data-plane counters.
func (t *InProc) Stats() StatsSnapshot { return t.stats.Snapshot() }

// Serve registers a handler under addr (auto-assigned when empty).
func (t *InProc) Serve(addr string, h Handler) (Listener, error) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if addr == "" {
		t.next++
		addr = fmt.Sprintf("inproc-%d", t.next)
	}
	if _, dup := t.handlers[addr]; dup {
		return nil, fmt.Errorf("transport: address %q already served", addr)
	}
	t.handlers[addr] = h
	return &inprocListener{t: t, addr: addr}, nil
}

// Dial returns an endpoint for a served address. The address is
// resolved on each Call, so an endpoint dialed before Serve fails only
// when used, and re-serving an address rebinds existing endpoints.
func (t *InProc) Dial(addr string) (Endpoint, error) {
	return &inprocEndpoint{t: t, addr: addr}, nil
}

type inprocListener struct {
	t    *InProc
	addr string
}

func (l *inprocListener) Addr() string { return l.addr }

func (l *inprocListener) Close() error {
	l.t.mu.Lock()
	defer l.t.mu.Unlock()
	delete(l.t.handlers, l.addr)
	return nil
}

type inprocEndpoint struct {
	t      *InProc
	addr   string
	mu     sync.Mutex
	closed bool
}

func (e *inprocEndpoint) Call(m *wire.Message) (*wire.Message, error) {
	return e.CallContext(context.Background(), m)
}

// CallContext mirrors the TCP endpoint's contract as far as a direct
// dispatch can: the context is checked before the handler runs (a
// handler already executing on the caller's goroutine cannot be
// interrupted).
func (e *inprocEndpoint) CallContext(ctx context.Context, m *wire.Message) (*wire.Message, error) {
	ctx, obs := beginClientCall(ctx, m)
	resp, err := e.callContext(ctx, m)
	obs.end(m, err)
	return resp, err
}

func (e *inprocEndpoint) callContext(ctx context.Context, m *wire.Message) (*wire.Message, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	e.mu.Lock()
	closed := e.closed
	e.mu.Unlock()
	if closed {
		return nil, ErrClosed
	}
	e.t.mu.RLock()
	h, ok := e.t.handlers[e.addr]
	e.t.mu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrNoSuchAddr, e.addr)
	}
	stats := &e.t.stats
	stats.InFlight.Add(1)
	defer stats.InFlight.Add(-1)
	// Round-trip through the wire encoding even in process, so the
	// in-process transport exercises exactly the same serialization
	// paths as TCP (catching non-encodable payloads in tests). The
	// scratch buffers come from the shared wire pool, as on TCP.
	data, err := m.AppendTo(wire.GetBuffer())
	if err != nil {
		wire.PutBuffer(data)
		return nil, fmt.Errorf("transport: encoding request: %w", err)
	}
	stats.FramesSent.Add(1)
	stats.BytesSent.Add(int64(len(data)))
	// Requests decode zero-copy exactly as on the TCP server side, so
	// handlers see the same slab-backed messages (and the same lifetime
	// rules) whichever transport runs under them.
	req, err := wire.UnmarshalMessageSlab(data)
	if err != nil {
		wire.PutBuffer(data)
		stats.DecodeErrors.Add(1)
		return nil, fmt.Errorf("transport: decoding request: %w", err)
	}
	resp := serveObserved(h, req)
	if resp == nil {
		req.Release()
		return nil, fmt.Errorf("transport: handler for %q returned nil", e.addr)
	}
	data, err = resp.AppendTo(wire.GetBuffer())
	// The response is encoded (or failed before writing a byte): the
	// request slab it may alias can go back to the pool either way.
	req.Release()
	if err != nil {
		wire.PutBuffer(data)
		return nil, fmt.Errorf("transport: encoding response: %w", err)
	}
	stats.FramesReceived.Add(1)
	stats.BytesReceived.Add(int64(len(data)))
	out, err := wire.UnmarshalMessage(data)
	wire.PutBuffer(data)
	if err != nil {
		stats.DecodeErrors.Add(1)
		return nil, fmt.Errorf("transport: decoding response: %w", err)
	}
	return out, nil
}

func (e *inprocEndpoint) Close() error {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.closed = true
	return nil
}
