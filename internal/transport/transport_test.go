package transport

import (
	"errors"
	"fmt"
	"strings"
	"sync"
	"testing"

	"partsvc/internal/wire"
)

// echoHandler replies with the request body prefixed by "echo:".
var echoHandler = HandlerFunc(func(m *wire.Message) *wire.Message {
	return &wire.Message{
		Kind: wire.KindResponse, ID: m.ID, Target: m.Target, Method: m.Method,
		Body: append([]byte("echo:"), m.Body...),
	}
})

// transports under test, constructed fresh per test.
func eachTransport(t *testing.T, fn func(t *testing.T, tr Transport)) {
	t.Run("inproc", func(t *testing.T) { fn(t, NewInProc()) })
	t.Run("tcp", func(t *testing.T) { fn(t, NewTCP()) })
}

func TestCallRoundTrip(t *testing.T) {
	eachTransport(t, func(t *testing.T, tr Transport) {
		ln, err := tr.Serve("", echoHandler)
		if err != nil {
			t.Fatal(err)
		}
		defer ln.Close()
		ep, err := tr.Dial(ln.Addr())
		if err != nil {
			t.Fatal(err)
		}
		defer ep.Close()
		resp, err := ep.Call(&wire.Message{Kind: wire.KindRequest, ID: 7, Method: "ping", Body: []byte("hi")})
		if err != nil {
			t.Fatal(err)
		}
		if resp.ID != 7 || string(resp.Body) != "echo:hi" {
			t.Errorf("resp = %+v", resp)
		}
	})
}

func TestSequentialCallsReuseConnection(t *testing.T) {
	eachTransport(t, func(t *testing.T, tr Transport) {
		ln, err := tr.Serve("", echoHandler)
		if err != nil {
			t.Fatal(err)
		}
		defer ln.Close()
		ep, err := tr.Dial(ln.Addr())
		if err != nil {
			t.Fatal(err)
		}
		defer ep.Close()
		for i := 0; i < 50; i++ {
			resp, err := ep.Call(&wire.Message{Kind: wire.KindRequest, ID: uint64(i), Body: []byte{byte(i)}})
			if err != nil {
				t.Fatalf("call %d: %v", i, err)
			}
			if resp.ID != uint64(i) {
				t.Fatalf("call %d: response ID %d", i, resp.ID)
			}
		}
	})
}

func TestConcurrentClients(t *testing.T) {
	eachTransport(t, func(t *testing.T, tr Transport) {
		ln, err := tr.Serve("", echoHandler)
		if err != nil {
			t.Fatal(err)
		}
		defer ln.Close()
		var wg sync.WaitGroup
		errs := make(chan error, 8)
		for c := 0; c < 8; c++ {
			wg.Add(1)
			go func(c int) {
				defer wg.Done()
				ep, err := tr.Dial(ln.Addr())
				if err != nil {
					errs <- err
					return
				}
				defer ep.Close()
				for i := 0; i < 20; i++ {
					body := fmt.Sprintf("c%d-%d", c, i)
					resp, err := ep.Call(&wire.Message{Kind: wire.KindRequest, Body: []byte(body)})
					if err != nil {
						errs <- err
						return
					}
					if string(resp.Body) != "echo:"+body {
						errs <- fmt.Errorf("got %q", resp.Body)
						return
					}
				}
			}(c)
		}
		wg.Wait()
		close(errs)
		for err := range errs {
			t.Error(err)
		}
	})
}

func TestClosedEndpointFails(t *testing.T) {
	eachTransport(t, func(t *testing.T, tr Transport) {
		ln, err := tr.Serve("", echoHandler)
		if err != nil {
			t.Fatal(err)
		}
		defer ln.Close()
		ep, err := tr.Dial(ln.Addr())
		if err != nil {
			t.Fatal(err)
		}
		if err := ep.Close(); err != nil {
			t.Fatal(err)
		}
		if _, err := ep.Call(&wire.Message{Kind: wire.KindRequest}); err == nil {
			t.Error("call on closed endpoint must fail")
		}
	})
}

func TestInProcDialUnknownAddr(t *testing.T) {
	tr := NewInProc()
	ep, err := tr.Dial("nowhere")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ep.Call(&wire.Message{Kind: wire.KindRequest}); !errors.Is(err, ErrNoSuchAddr) {
		t.Errorf("err = %v, want ErrNoSuchAddr", err)
	}
}

func TestInProcDuplicateServe(t *testing.T) {
	tr := NewInProc()
	if _, err := tr.Serve("a", echoHandler); err != nil {
		t.Fatal(err)
	}
	if _, err := tr.Serve("a", echoHandler); err == nil {
		t.Error("duplicate address must be rejected")
	}
}

func TestInProcListenerCloseUnbinds(t *testing.T) {
	tr := NewInProc()
	ln, err := tr.Serve("svc", echoHandler)
	if err != nil {
		t.Fatal(err)
	}
	ep, _ := tr.Dial("svc")
	if _, err := ep.Call(&wire.Message{Kind: wire.KindRequest}); err != nil {
		t.Fatal(err)
	}
	ln.Close()
	if _, err := ep.Call(&wire.Message{Kind: wire.KindRequest}); err == nil {
		t.Error("call after listener close must fail")
	}
}

func TestInProcRejectsNilHandlerResponse(t *testing.T) {
	tr := NewInProc()
	ln, _ := tr.Serve("", HandlerFunc(func(*wire.Message) *wire.Message { return nil }))
	ep, _ := tr.Dial(ln.Addr())
	if _, err := ep.Call(&wire.Message{Kind: wire.KindRequest}); err == nil {
		t.Error("nil handler response must error")
	}
}

func TestTCPDialRefused(t *testing.T) {
	tr := NewTCP()
	if _, err := tr.Dial("127.0.0.1:1"); err == nil {
		t.Error("dial to a dead port must fail")
	}
}

func TestTCPListenerCloseStopsService(t *testing.T) {
	tr := NewTCP()
	ln, err := tr.Serve("", echoHandler)
	if err != nil {
		t.Fatal(err)
	}
	ep, err := tr.Dial(ln.Addr())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ep.Call(&wire.Message{Kind: wire.KindRequest}); err != nil {
		t.Fatal(err)
	}
	ln.Close()
	if _, err := ep.Call(&wire.Message{Kind: wire.KindRequest}); err == nil {
		t.Error("call after listener close must fail")
	}
}

func TestErrorResponseAndAsError(t *testing.T) {
	req := &wire.Message{Kind: wire.KindRequest, ID: 3, Method: "send"}
	resp := ErrorResponse(req, "boom %d", 42)
	if resp.Kind != wire.KindError || resp.ID != 3 {
		t.Errorf("resp = %+v", resp)
	}
	err := AsError(resp)
	if err == nil || !strings.Contains(err.Error(), "boom 42") {
		t.Errorf("AsError = %v", err)
	}
	if AsError(&wire.Message{Kind: wire.KindResponse}) != nil {
		t.Error("non-error response must map to nil")
	}
	if AsError(nil) != nil {
		t.Error("nil response must map to nil")
	}
	if AsError(&wire.Message{Kind: wire.KindError}) == nil {
		t.Error("error without message still maps to an error")
	}
}

func TestRealClockMonotonic(t *testing.T) {
	c := NewRealClock()
	a := c.NowMS()
	b := c.NowMS()
	if b < a {
		t.Errorf("clock went backwards: %v then %v", a, b)
	}
}

func TestTCPServeBadAddress(t *testing.T) {
	tr := NewTCP()
	if _, err := tr.Serve("256.256.256.256:99999", echoHandler); err == nil {
		t.Error("unlistenable address must fail")
	}
}

func TestTCPCorruptFrameDropsConnection(t *testing.T) {
	tr := NewTCP()
	ln, err := tr.Serve("", echoHandler)
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	// Hand-roll a client that sends a garbage frame body.
	ep, err := tr.Dial(ln.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer ep.Close()
	raw := ep.(*tcpEndpoint)
	if err := wireWriteGarbage(raw); err != nil {
		t.Fatal(err)
	}
	// The server drops the connection; the next call errors.
	if _, err := ep.Call(&wire.Message{Kind: wire.KindRequest}); err == nil {
		t.Error("call on a dropped connection must fail")
	}
}

// wireWriteGarbage writes a framed payload that is not a valid message.
func wireWriteGarbage(e *tcpEndpoint) error {
	e.mu.Lock()
	defer e.mu.Unlock()
	return wire.WriteFrame(e.conn, []byte{0x7f, 0x00})
}

func TestTCPDoubleCloseIsIdempotent(t *testing.T) {
	tr := NewTCP()
	ln, err := tr.Serve("", echoHandler)
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	ep, err := tr.Dial(ln.Addr())
	if err != nil {
		t.Fatal(err)
	}
	if err := ep.Close(); err != nil {
		t.Fatal(err)
	}
	if err := ep.Close(); err != nil {
		t.Errorf("second close must be a no-op: %v", err)
	}
}
