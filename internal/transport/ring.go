package transport

import (
	"errors"
	"io"
	"runtime"
	"sync/atomic"
	"time"
)

// Shared-memory ring transport for co-located components. The paper's
// partitioned deployments routinely place adjacent chain components on
// the same node (partition servers hosting several components, §4–5);
// for those pairs the remaining TCP loopback cost is pure syscall
// overhead. A ring connection replaces the socket with two SPSC byte
// rings — one per direction — that behave exactly like a socket from
// the transport's point of view: the same v2 framing, the same MPSC
// write queue and writev-style batching in front, the same slab decode
// and admission control behind. Only the byte carrier changes, so
// every connection-level semantic (v1 echo, stalled-peer write
// deadlines, teardown on close) is inherited rather than re-implemented.
//
// Ring layout (see DESIGN.md §5e): a power-of-two byte buffer indexed
// by two monotonically increasing counters. head (bytes consumed) is
// advanced only by the reader; tail (bytes produced) only by the
// writer. Each side keeps a cached copy of the other's counter and
// reloads it only when the cache says the ring is full/empty, so in
// steady state neither side touches the other's cache line. Waiters
// spin a few scheduler yields, then park on a runtime semaphore (the
// same parker as the MPSC queue).

// errRingClosed reports I/O on a closed ring connection.
var errRingClosed = errors.New("transport: ring connection closed")

// errRingWriteTimeout reports a ring write that missed its deadline:
// the in-process peer stopped draining. It mirrors a socket write
// deadline, so stalled-peer isolation works identically over rings.
var errRingWriteTimeout = errors.New("transport: ring write timed out (peer not reading)")

// DefaultRingSize is the per-direction ring capacity in bytes. Frames
// larger than the ring still flow through: writes stream into free
// space as the peer drains, exactly like a socket buffer.
const DefaultRingSize = 256 << 10

// ringSpinYields bounds the scheduler-yield spin before a ring waiter
// parks. Yields keep the single-CPU case fair (the peer gets the core)
// while letting a multi-core reader catch a near-future write without
// a semaphore round trip.
const ringSpinYields = 8

// spscRing is one direction of a ring connection: a single producer
// streaming bytes to a single consumer.
type spscRing struct {
	buf   []byte
	mask  uint64
	stats *Stats

	head atomic.Uint64 // bytes consumed; reader-owned
	_    [56]byte
	tail atomic.Uint64 // bytes produced; writer-owned
	_    [56]byte
	// cachedHead is the producer's last-seen head (producer-local);
	// cachedTail is the consumer's last-seen tail (consumer-local).
	// Padded apart so the two owners never share a line.
	cachedHead uint64
	_          [56]byte
	cachedTail uint64
	_          [56]byte

	closed atomic.Bool
	prod   parker // producer parked waiting for space
	cons   parker // consumer parked waiting for data
}

func newSPSCRing(size int, stats *Stats) *spscRing {
	if size <= 0 {
		size = DefaultRingSize
	}
	// Round up to a power of two so offset arithmetic is a mask.
	cap := 1
	for cap < size {
		cap <<= 1
	}
	r := &spscRing{buf: make([]byte, cap), mask: uint64(cap - 1), stats: stats}
	if stats != nil {
		r.prod.parks, r.prod.wakes = &stats.RingParks, &stats.RingWakes
		r.cons.parks, r.cons.wakes = &stats.RingParks, &stats.RingWakes
	}
	return r
}

// write streams p into the ring, blocking (spin, then park) while the
// ring is full. A non-zero deadline bounds the total blocking time —
// the in-process analogue of a socket write deadline.
func (r *spscRing) write(p []byte, deadline time.Time) (int, error) {
	bufs := [1][]byte{p}
	n, err := r.writev(bufs[:], deadline)
	return int(n), err
}

// writev streams a whole gather list into the ring as one contiguous
// byte sequence, publishing the tail and waking the consumer once per
// space reservation instead of once per slice. This is the ring
// analogue of a socket writev: a batch of N frames (2N slices) is
// usually one publish + one wake.
func (r *spscRing) writev(bufs [][]byte, deadline time.Time) (int64, error) {
	capacity := uint64(len(r.buf))
	t := r.tail.Load()
	published := t
	var written int64
	// publish makes bytes copied so far visible and wakes the consumer.
	publish := func() {
		if t == published {
			return
		}
		r.tail.Store(t)
		if r.stats != nil {
			r.stats.RingOccupancy.Add(int64(t - published))
		}
		published = t
		r.cons.wake()
	}
	for _, p := range bufs {
		for len(p) > 0 {
			if r.closed.Load() {
				publish()
				return written, errRingClosed
			}
			free := capacity - (t - r.cachedHead)
			if free == 0 {
				r.cachedHead = r.head.Load()
				free = capacity - (t - r.cachedHead)
				if free == 0 {
					// Hand the consumer what is copied so far, then wait
					// for it to drain.
					publish()
					if err := r.waitSpace(t, capacity, deadline); err != nil {
						return written, err
					}
					continue
				}
			}
			n := uint64(len(p))
			if n > free {
				n = free
			}
			off := t & r.mask
			first := capacity - off
			if first > n {
				first = n
			}
			copy(r.buf[off:off+first], p[:first])
			copy(r.buf[:n-first], p[first:n])
			t += n
			written += int64(n)
			p = p[n:]
		}
	}
	publish()
	return written, nil
}

// waitSpace blocks the producer until the consumer frees space, the
// ring closes, or the deadline passes.
func (r *spscRing) waitSpace(tail, capacity uint64, deadline time.Time) error {
	ready := func() bool {
		return r.closed.Load() || capacity-(tail-r.head.Load()) > 0
	}
	for i := 0; i < ringSpinYields; i++ {
		if ready() {
			return nil
		}
		runtime.Gosched()
	}
	var timer *time.Timer
	if !deadline.IsZero() {
		d := time.Until(deadline)
		if d <= 0 {
			return errRingWriteTimeout
		}
		// The timer just wakes the parked producer; the deadline test
		// below decides whether the wake was a timeout.
		timer = time.AfterFunc(d, r.prod.wake)
	}
	r.prod.park(ready)
	if timer != nil {
		timer.Stop()
	}
	if !ready() && !deadline.IsZero() && !time.Now().Before(deadline) {
		return errRingWriteTimeout
	}
	return nil
}

// read copies up to len(p) available bytes out of the ring, blocking
// while it is empty. A closed ring drains its remaining bytes, then
// reports io.EOF — the socket close contract.
func (r *spscRing) read(p []byte) (int, error) {
	if len(p) == 0 {
		return 0, nil
	}
	for {
		h := r.head.Load()
		avail := r.cachedTail - h
		if avail == 0 {
			r.cachedTail = r.tail.Load()
			avail = r.cachedTail - h
			if avail == 0 {
				if r.closed.Load() {
					// Re-check after the closed load: a close racing a
					// final write must not drop bytes.
					if r.cachedTail = r.tail.Load(); r.cachedTail-h > 0 {
						continue
					}
					return 0, io.EOF
				}
				r.waitData(h)
				continue
			}
		}
		n := uint64(len(p))
		if n > avail {
			n = avail
		}
		off := h & r.mask
		first := uint64(len(r.buf)) - off
		if first > n {
			first = n
		}
		copy(p[:first], r.buf[off:off+first])
		copy(p[first:n], r.buf[:n-first])
		r.head.Store(h + n)
		if r.stats != nil {
			r.stats.RingOccupancy.Add(-int64(n))
		}
		r.prod.wake()
		return int(n), nil
	}
}

// waitData blocks the consumer until the producer publishes bytes or
// the ring closes.
func (r *spscRing) waitData(head uint64) {
	ready := func() bool { return r.closed.Load() || r.tail.Load() != head }
	for i := 0; i < ringSpinYields; i++ {
		if ready() {
			return
		}
		runtime.Gosched()
	}
	r.cons.park(ready)
}

// close marks the ring closed and wakes both sides.
func (r *spscRing) close() {
	r.closed.Store(true)
	r.prod.wake()
	r.cons.wake()
}

// occupancy returns the bytes currently buffered in the ring.
func (r *spscRing) occupancy() uint64 { return r.tail.Load() - r.head.Load() }

// ringConn is one endpoint's view of a ring connection: it reads from
// one ring and writes to the other, and satisfies wireConn so the
// whole TCP connection machinery (frame reader, MPSC-fed write loop,
// worker dispatch) runs on it unchanged. Close closes both rings, so
// either side tearing down takes the pair with it — the socket
// contract the transport already handles.
type ringConn struct {
	rd, wr *spscRing
	// wdeadline is touched only by the connection's single writer
	// goroutine (SetWriteDeadline then Write), so it needs no locking.
	wdeadline time.Time
}

// newRingPair returns the two connected endpoints of a ring
// connection (first the dialing side, then the serving side).
func newRingPair(size int, stats *Stats) (*ringConn, *ringConn) {
	c2s := newSPSCRing(size, stats)
	s2c := newSPSCRing(size, stats)
	return &ringConn{rd: s2c, wr: c2s}, &ringConn{rd: c2s, wr: s2c}
}

func (c *ringConn) Read(p []byte) (int, error)  { return c.rd.read(p) }
func (c *ringConn) Write(p []byte) (int, error) { return c.wr.write(p, c.wdeadline) }

// writeBuffers is the gather-write fast path the write loop prefers
// over net.Buffers.WriteTo (which degrades to one Write per slice on
// non-socket writers): the whole batch lands in the ring with one
// publish and one consumer wake.
func (c *ringConn) writeBuffers(bufs [][]byte) (int64, error) {
	return c.wr.writev(bufs, c.wdeadline)
}

func (c *ringConn) SetWriteDeadline(t time.Time) error {
	c.wdeadline = t
	return nil
}

func (c *ringConn) Close() error {
	c.rd.close()
	c.wr.close()
	return nil
}
