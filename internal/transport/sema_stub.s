// Empty assembly file: enables //go:linkname of runtime semaphore
// functions from mpsc.go (same pattern as internal/metrics).
