package transport

import (
	"bytes"
	"encoding/binary"
	"errors"
	"io"
	"sync"
	"testing"
	"time"

	"partsvc/internal/wire"
)

// TestRingDialUsesRing checks the co-located fast path selection: with
// Ring set, dialing an address served by the same transport instance
// must come back as a ring connection (no socket), counted in
// ring_conns, with calls behaving exactly like TCP.
func TestRingDialUsesRing(t *testing.T) {
	tr := NewTCP()
	tr.Ring = true
	ln, err := tr.Serve("", echoHandler)
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	ep, err := tr.Dial(ln.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer ep.Close()
	if _, ok := ep.(*tcpEndpoint).conn.(*ringConn); !ok {
		t.Fatalf("co-located dial produced %T, want *ringConn", ep.(*tcpEndpoint).conn)
	}
	if got := tr.Stats().RingConns; got != 1 {
		t.Fatalf("RingConns = %d, want 1", got)
	}
	for i := 0; i < 100; i++ {
		resp, err := ep.Call(&wire.Message{Kind: wire.KindRequest, ID: uint64(i), Method: "ping", Body: []byte("ring")})
		if err != nil {
			t.Fatal(err)
		}
		if resp.Kind != wire.KindResponse || resp.ID != uint64(i) || string(resp.Body) != "echo:ring" {
			t.Fatalf("resp = %+v", resp)
		}
	}
}

// TestRingDialFallsBackToTCP checks the miss path: Ring set but the
// address belongs to a different transport instance (a remote node, as
// far as this instance knows) — the dial must transparently use TCP.
func TestRingDialFallsBackToTCP(t *testing.T) {
	server := NewTCP()
	ln, err := server.Serve("", echoHandler)
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()

	client := NewTCP()
	client.Ring = true
	ep, err := client.Dial(ln.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer ep.Close()
	if _, ok := ep.(*tcpEndpoint).conn.(*ringConn); ok {
		t.Fatal("dial to a foreign listener produced a ring connection")
	}
	if got := client.Stats().RingConns; got != 0 {
		t.Fatalf("RingConns = %d, want 0", got)
	}
	resp, err := ep.Call(&wire.Message{Kind: wire.KindRequest, ID: 1, Body: []byte("x")})
	if err != nil || string(resp.Body) != "echo:x" {
		t.Fatalf("fallback call: resp=%+v err=%v", resp, err)
	}
}

// TestRingConcurrentCallers hammers one ring connection from many
// goroutines — the MPSC producers and both ring directions under
// contention (run with -race).
func TestRingConcurrentCallers(t *testing.T) {
	tr := NewTCP()
	tr.Ring = true
	ln, err := tr.Serve("", echoHandler)
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	ep, err := tr.Dial(ln.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer ep.Close()

	const callers, perCaller = 16, 200
	var wg sync.WaitGroup
	errs := make(chan error, callers)
	for c := 0; c < callers; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for i := 0; i < perCaller; i++ {
				id := uint64(c*perCaller + i)
				resp, err := ep.Call(&wire.Message{Kind: wire.KindRequest, ID: id, Body: []byte("c")})
				if err != nil {
					errs <- err
					return
				}
				if resp.ID != id {
					t.Errorf("caller %d: resp ID %d, want %d (demux broken)", c, resp.ID, id)
					return
				}
			}
		}(c)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

// TestRingLargeMessageStreams checks that frames much larger than the
// ring stream through it like a socket buffer instead of deadlocking.
func TestRingLargeMessageStreams(t *testing.T) {
	tr := NewTCP()
	tr.Ring = true
	tr.RingSize = 4096 // far smaller than the payload
	ln, err := tr.Serve("", echoHandler)
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	ep, err := tr.Dial(ln.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer ep.Close()

	body := bytes.Repeat([]byte("s"), 256<<10)
	resp, err := ep.Call(&wire.Message{Kind: wire.KindRequest, ID: 42, Body: body})
	if err != nil {
		t.Fatal(err)
	}
	if resp.ID != 42 || len(resp.Body) != len(body)+len("echo:") {
		t.Fatalf("large echo: id=%d len=%d", resp.ID, len(resp.Body))
	}
}

// TestRingV1ClientRoundTrip is the framing-compatibility check over
// shared memory: a legacy v1-framed peer on the raw ring must get its
// reply v1-framed, exactly as over a socket (the connection machinery
// is shared, but this pins it).
func TestRingV1ClientRoundTrip(t *testing.T) {
	tr := NewTCP()
	ln, err := tr.Serve("", echoHandler)
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()

	cli, srv := newRingPair(0, &tr.stats)
	if !ln.(*tcpListener).adopt(srv) {
		t.Fatal("listener refused the ring connection")
	}
	defer cli.Close()

	payload, err := (&wire.Message{Kind: wire.KindRequest, ID: 7, Method: "ping", Body: []byte("legacy")}).Marshal()
	if err != nil {
		t.Fatal(err)
	}
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], uint32(len(payload)))
	if _, err := cli.Write(append(hdr[:], payload...)); err != nil {
		t.Fatal(err)
	}
	if _, err := io.ReadFull(cli, hdr[:]); err != nil {
		t.Fatalf("reading response header: %v", err)
	}
	word := binary.BigEndian.Uint32(hdr[:])
	if word&0x80000000 != 0 {
		t.Fatal("response to a v1 request over a ring is v2-framed")
	}
	buf := make([]byte, word)
	if _, err := io.ReadFull(cli, buf); err != nil {
		t.Fatalf("reading response payload: %v", err)
	}
	resp, err := wire.UnmarshalMessage(buf)
	if err != nil {
		t.Fatal(err)
	}
	if resp.Kind != wire.KindResponse || resp.ID != 7 || string(resp.Body) != "echo:legacy" {
		t.Fatalf("resp = %+v", resp)
	}
}

// TestRingShedUnderLoad checks that admission control sheds identically
// over rings: a saturated 1-worker listener answers overflow with
// ErrOverloaded while the worker is still parked.
func TestRingShedUnderLoad(t *testing.T) {
	tr := NewTCP()
	tr.Ring = true
	tr.Workers = 1
	tr.QueueDepth = 2
	tr.CallTimeout = 30 * time.Second

	release := make(chan struct{})
	var entered sync.WaitGroup
	entered.Add(1)
	var enterOnce sync.Once
	slow := HandlerFunc(func(m *wire.Message) *wire.Message {
		enterOnce.Do(entered.Done)
		<-release
		return &wire.Message{Kind: wire.KindResponse, ID: m.ID}
	})
	ln, err := tr.Serve("", slow)
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	ep, err := tr.Dial(ln.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer ep.Close()
	if _, ok := ep.(*tcpEndpoint).conn.(*ringConn); !ok {
		t.Fatal("expected a ring connection")
	}

	const burst = 16
	var wg sync.WaitGroup
	results := make(chan error, burst)
	call := func() {
		defer wg.Done()
		resp, err := ep.Call(&wire.Message{Kind: wire.KindRequest, Method: "slow"})
		if err == nil {
			err = AsError(resp)
		}
		results <- err
	}
	wg.Add(1)
	go call()
	entered.Wait()
	for i := 0; i < burst-1; i++ {
		wg.Add(1)
		go call()
	}
	select {
	case err := <-results:
		if !errors.Is(err, ErrOverloaded) {
			t.Fatalf("first completed call got %v, want ErrOverloaded", err)
		}
		results <- err
	case <-time.After(10 * time.Second):
		t.Fatal("no shed reply over the ring while the pool was saturated")
	}
	close(release)
	wg.Wait()
	close(results)
	var ok, overloaded int
	for err := range results {
		switch {
		case err == nil:
			ok++
		case errors.Is(err, ErrOverloaded):
			overloaded++
		default:
			t.Fatalf("call failed with %v, want nil or ErrOverloaded", err)
		}
	}
	if ok == 0 || overloaded == 0 || ok+overloaded != burst {
		t.Fatalf("ok=%d overloaded=%d of %d: want both outcomes and no losses", ok, overloaded, burst)
	}
}

// TestRingListenerCloseFailsCalls checks teardown: closing the listener
// must fail in-flight and future calls on ring endpoints, exactly like
// a closed socket.
func TestRingListenerCloseFailsCalls(t *testing.T) {
	tr := NewTCP()
	tr.Ring = true
	ln, err := tr.Serve("", echoHandler)
	if err != nil {
		t.Fatal(err)
	}
	ep, err := tr.Dial(ln.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer ep.Close()
	if _, err := ep.Call(&wire.Message{Kind: wire.KindRequest, ID: 1}); err != nil {
		t.Fatal(err)
	}
	ln.Close()
	deadline := time.Now().Add(10 * time.Second)
	for {
		if _, err := ep.Call(&wire.Message{Kind: wire.KindRequest, ID: 2}); err != nil {
			return // endpoint observed the close
		}
		if time.Now().After(deadline) {
			t.Fatal("calls still succeed after listener close")
		}
		time.Sleep(time.Millisecond)
	}
}

// TestRingDialAfterListenerClose checks the registry is cleaned up: a
// Ring dial after Close must not find the dead listener (and the TCP
// fallback must refuse).
func TestRingDialAfterListenerClose(t *testing.T) {
	tr := NewTCP()
	tr.Ring = true
	ln, err := tr.Serve("", echoHandler)
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr()
	ln.Close()
	if l := tr.lookupLocal(addr); l != nil {
		t.Fatal("closed listener still registered for ring dials")
	}
	if _, err := tr.Dial(addr); err == nil {
		t.Fatal("dial to a closed listener succeeded")
	}
}

// TestSPSCRingByteStream pins the raw ring contract: bytes come out in
// order across wrap-around, a closed ring drains then reports EOF, and
// a full ring honours the write deadline when the peer stops reading.
func TestSPSCRingByteStream(t *testing.T) {
	r := newSPSCRing(64, nil) // tiny: forces wrap and backpressure
	var got []byte
	done := make(chan struct{})
	go func() {
		defer close(done)
		buf := make([]byte, 13) // odd size: misaligns with the ring
		for {
			n, err := r.read(buf)
			got = append(got, buf[:n]...)
			if err != nil {
				if err != io.EOF {
					t.Errorf("read: %v", err)
				}
				return
			}
		}
	}()
	want := make([]byte, 1000)
	for i := range want {
		want[i] = byte(i)
	}
	for off := 0; off < len(want); off += 100 {
		if _, err := r.write(want[off:off+100], time.Time{}); err != nil {
			t.Fatal(err)
		}
	}
	r.close()
	<-done
	if !bytes.Equal(got, want) {
		t.Fatalf("ring stream corrupted: got %d bytes, want %d (first diff at %d)", len(got), len(want), firstDiff(got, want))
	}
	if occ := r.occupancy(); occ != 0 {
		t.Fatalf("occupancy after drain = %d", occ)
	}
}

func firstDiff(a, b []byte) int {
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	for i := 0; i < n; i++ {
		if a[i] != b[i] {
			return i
		}
	}
	return n
}

// TestSPSCRingWriteDeadline checks stalled-peer isolation over shared
// memory: a full ring with no reader must fail the write within the
// deadline, not block forever.
func TestSPSCRingWriteDeadline(t *testing.T) {
	r := newSPSCRing(64, nil)
	payload := make([]byte, 256) // several times the capacity
	start := time.Now()
	_, err := r.write(payload, time.Now().Add(50*time.Millisecond))
	if !errors.Is(err, errRingWriteTimeout) {
		t.Fatalf("write to a stalled ring: err=%v, want errRingWriteTimeout", err)
	}
	if waited := time.Since(start); waited > 5*time.Second {
		t.Fatalf("deadline took %v to fire", waited)
	}
}
