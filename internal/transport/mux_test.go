package transport

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"partsvc/internal/wire"
)

// TestMuxConcurrentCallsOneEndpoint drives many goroutines through ONE
// endpoint (one TCP connection) and checks every response reaches its
// caller — the demultiplexing contract.
func TestMuxConcurrentCallsOneEndpoint(t *testing.T) {
	eachTransport(t, func(t *testing.T, tr Transport) {
		ln, err := tr.Serve("", echoHandler)
		if err != nil {
			t.Fatal(err)
		}
		defer ln.Close()
		ep, err := tr.Dial(ln.Addr())
		if err != nil {
			t.Fatal(err)
		}
		defer ep.Close()
		var wg sync.WaitGroup
		errs := make(chan error, 32)
		for c := 0; c < 32; c++ {
			wg.Add(1)
			go func(c int) {
				defer wg.Done()
				for i := 0; i < 25; i++ {
					body := fmt.Sprintf("c%d-%d", c, i)
					resp, err := ep.Call(&wire.Message{Kind: wire.KindRequest, Body: []byte(body)})
					if err != nil {
						errs <- err
						return
					}
					if string(resp.Body) != "echo:"+body {
						errs <- fmt.Errorf("response for %q was %q: cross-caller delivery", body, resp.Body)
						return
					}
				}
			}(c)
		}
		wg.Wait()
		close(errs)
		for err := range errs {
			t.Error(err)
		}
	})
}

// TestMuxSlowCallDoesNotBlockFastCalls checks pipelining: a slow
// handler invocation must not head-of-line-block other requests on the
// same connection.
func TestMuxSlowCallDoesNotBlockFastCalls(t *testing.T) {
	release := make(chan struct{})
	h := HandlerFunc(func(m *wire.Message) *wire.Message {
		if m.Method == "slow" {
			<-release
		}
		return &wire.Message{Kind: wire.KindResponse, ID: m.ID, Method: m.Method}
	})
	tr := NewTCP()
	ln, err := tr.Serve("", h)
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	ep, err := tr.Dial(ln.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer ep.Close()

	slowDone := make(chan error, 1)
	go func() {
		_, err := ep.Call(&wire.Message{Kind: wire.KindRequest, Method: "slow"})
		slowDone <- err
	}()
	// The fast call must complete while the slow one is still parked.
	fastDone := make(chan error, 1)
	go func() {
		_, err := ep.Call(&wire.Message{Kind: wire.KindRequest, Method: "fast"})
		fastDone <- err
	}()
	select {
	case err := <-fastDone:
		if err != nil {
			t.Fatalf("fast call: %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("fast call blocked behind the slow one")
	}
	close(release)
	if err := <-slowDone; err != nil {
		t.Fatalf("slow call: %v", err)
	}
}

// TestMuxCloseInterruptsPendingCall is the close-during-call
// regression: Close must interrupt a parked call with ErrClosed instead
// of blocking until the response arrives.
func TestMuxCloseInterruptsPendingCall(t *testing.T) {
	started := make(chan struct{}, 1)
	release := make(chan struct{})
	h := HandlerFunc(func(m *wire.Message) *wire.Message {
		started <- struct{}{}
		<-release
		return &wire.Message{Kind: wire.KindResponse, ID: m.ID}
	})
	defer close(release)
	tr := NewTCP()
	ln, err := tr.Serve("", h)
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	ep, err := tr.Dial(ln.Addr())
	if err != nil {
		t.Fatal(err)
	}
	callDone := make(chan error, 1)
	go func() {
		_, err := ep.Call(&wire.Message{Kind: wire.KindRequest, Method: "hang"})
		callDone <- err
	}()
	<-started // the call is in the handler, so it is definitely pending
	closeDone := make(chan error, 1)
	go func() { closeDone <- ep.Close() }()
	select {
	case err := <-closeDone:
		if err != nil {
			t.Fatalf("close: %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Close blocked on the in-flight call")
	}
	select {
	case err := <-callDone:
		if !errors.Is(err, ErrClosed) {
			t.Fatalf("pending call err = %v, want ErrClosed", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("pending call not interrupted by Close")
	}
}

// TestMuxConnectionDeathFailsAllPending checks error propagation: when
// the server vanishes, every parked caller gets an error, not a hang.
func TestMuxConnectionDeathFailsAllPending(t *testing.T) {
	release := make(chan struct{})
	var once sync.Once
	h := HandlerFunc(func(m *wire.Message) *wire.Message {
		<-release
		return &wire.Message{Kind: wire.KindResponse, ID: m.ID}
	})
	tr := NewTCP()
	ln, err := tr.Serve("", h)
	if err != nil {
		t.Fatal(err)
	}
	ep, err := tr.Dial(ln.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer ep.Close()
	const callers = 8
	errs := make(chan error, callers)
	for i := 0; i < callers; i++ {
		go func() {
			_, err := ep.Call(&wire.Message{Kind: wire.KindRequest})
			errs <- err
			once.Do(func() { close(release) })
		}()
	}
	time.Sleep(50 * time.Millisecond) // let the calls park
	ln.Close()                        // kill the server with calls in flight
	for i := 0; i < callers; i++ {
		select {
		case err := <-errs:
			if err == nil {
				t.Error("pending call survived connection death")
			}
		case <-time.After(5 * time.Second):
			t.Fatal("pending call hung after connection death")
		}
	}
}

// TestMuxCallTimeout checks the per-call timeout.
func TestMuxCallTimeout(t *testing.T) {
	release := make(chan struct{})
	defer close(release)
	h := HandlerFunc(func(m *wire.Message) *wire.Message {
		<-release
		return &wire.Message{Kind: wire.KindResponse, ID: m.ID}
	})
	tr := NewTCP()
	tr.CallTimeout = 50 * time.Millisecond
	ln, err := tr.Serve("", h)
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	ep, err := tr.Dial(ln.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer ep.Close()
	if _, err := ep.Call(&wire.Message{Kind: wire.KindRequest}); !errors.Is(err, ErrCallTimeout) {
		t.Fatalf("err = %v, want ErrCallTimeout", err)
	}
}

// TestMuxCallContextCancel checks caller-side cancellation.
func TestMuxCallContextCancel(t *testing.T) {
	release := make(chan struct{})
	defer close(release)
	h := HandlerFunc(func(m *wire.Message) *wire.Message {
		<-release
		return &wire.Message{Kind: wire.KindResponse, ID: m.ID}
	})
	tr := NewTCP()
	ln, err := tr.Serve("", h)
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	ep, err := tr.Dial(ln.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer ep.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	if _, err := Call(ctx, ep, &wire.Message{Kind: wire.KindRequest}); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want DeadlineExceeded", err)
	}
}

// TestMuxDecodeErrorGetsFinalResponse checks the serveConn satellite: a
// well-framed but undecodable message must produce a final error
// response and a decode-errors counter bump, not a silent drop.
func TestMuxDecodeErrorGetsFinalResponse(t *testing.T) {
	tr := NewTCP()
	ln, err := tr.Serve("", echoHandler)
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	ep, err := tr.Dial(ln.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer ep.Close()
	before := tr.Stats().DecodeErrors
	// Queue a garbage frame through the endpoint's own writer with a
	// registered pending call, so the server's final error response
	// demultiplexes back to us.
	raw := ep.(*tcpEndpoint)
	ch := make(chan callResult, 1)
	raw.mu.Lock()
	raw.nextID++
	id := raw.nextID
	raw.pending[id] = ch
	raw.mu.Unlock()
	payload := append(wire.GetBuffer(), 0x7f, 0x00) // unknown tag
	raw.q.push(outFrame{id: id, payload: payload})
	select {
	case res := <-ch:
		if res.err != nil {
			t.Fatalf("frame result err = %v", res.err)
		}
		if err := AsError(res.resp); err == nil {
			t.Fatalf("resp = %+v, want a KindError response", res.resp)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("no final error response for the corrupt message")
	}
	if after := tr.Stats().DecodeErrors; after != before+1 {
		t.Errorf("DecodeErrors = %d, want %d", after, before+1)
	}
}

// TestMuxWorkerPoolBounded checks that the handler pool caps
// server-side concurrency at the configured size.
func TestMuxWorkerPoolBounded(t *testing.T) {
	var mu sync.Mutex
	active, peak := 0, 0
	release := make(chan struct{})
	h := HandlerFunc(func(m *wire.Message) *wire.Message {
		mu.Lock()
		active++
		if active > peak {
			peak = active
		}
		mu.Unlock()
		<-release
		mu.Lock()
		active--
		mu.Unlock()
		return &wire.Message{Kind: wire.KindResponse, ID: m.ID}
	})
	tr := NewTCP()
	tr.Workers = 2
	ln, err := tr.Serve("", h)
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	ep, err := tr.Dial(ln.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer ep.Close()
	var wg sync.WaitGroup
	for i := 0; i < 6; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			ep.Call(&wire.Message{Kind: wire.KindRequest})
		}()
	}
	time.Sleep(100 * time.Millisecond) // let calls pile into the pool
	close(release)
	wg.Wait()
	mu.Lock()
	defer mu.Unlock()
	if peak > 2 {
		t.Errorf("peak concurrent handlers = %d, want <= 2", peak)
	}
	if peak == 0 {
		t.Error("no handler ran")
	}
}

// TestMuxStatsCount checks the per-endpoint counters move.
func TestMuxStatsCount(t *testing.T) {
	tr := NewTCP()
	ln, err := tr.Serve("", echoHandler)
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	ep, err := tr.Dial(ln.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer ep.Close()
	for i := 0; i < 10; i++ {
		if _, err := ep.Call(&wire.Message{Kind: wire.KindRequest, Body: []byte("x")}); err != nil {
			t.Fatal(err)
		}
	}
	st := tr.Stats()
	// Client sent 10 requests, server sent 10 responses: both halves
	// share the transport's counters.
	if st.FramesSent < 20 || st.FramesReceived < 20 {
		t.Errorf("frames sent/received = %d/%d, want >= 20 each", st.FramesSent, st.FramesReceived)
	}
	if st.BytesSent == 0 || st.BytesReceived == 0 {
		t.Errorf("bytes sent/received = %d/%d", st.BytesSent, st.BytesReceived)
	}
	if st.InFlight != 0 {
		t.Errorf("InFlight = %d after all calls returned", st.InFlight)
	}
	if pool := wire.SnapshotPool(); pool.Hits+pool.Misses == 0 {
		t.Error("buffer pool counters not moving")
	}
}
