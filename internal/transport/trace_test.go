package transport

import (
	"bytes"
	"context"
	"encoding/binary"
	"io"
	"net"
	"sync"
	"testing"
	"time"

	"partsvc/internal/trace"
	"partsvc/internal/wire"
)

// TestTracedCallRecordsSpans is the transport-level span contract:
// with tracing enabled, one TCP call records a client span and a
// server span stitched into the same trace via the wire trace field.
func TestTracedCallRecordsSpans(t *testing.T) {
	trace.SetEnabled(true)
	defer trace.SetEnabled(false)
	trace.Default.Reset()
	defer trace.Default.Reset()

	tr := NewTCP()
	ln, err := tr.Serve("", echoHandler)
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	ep, err := tr.Dial(ln.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer ep.Close()

	if _, err := ep.Call(&wire.Message{Kind: wire.KindRequest, Method: "ping"}); err != nil {
		t.Fatal(err)
	}
	spans := trace.Default.Spans()
	var call, serve *trace.Span
	for i := range spans {
		switch spans[i].Name {
		case "transport.call":
			call = &spans[i]
		case "transport.serve":
			serve = &spans[i]
		}
	}
	if call == nil || serve == nil {
		t.Fatalf("missing spans in %d recorded", len(spans))
	}
	if serve.TraceID != call.TraceID {
		t.Errorf("server span trace %d, client trace %d — not stitched", serve.TraceID, call.TraceID)
	}
	if serve.Parent != call.SpanID {
		t.Errorf("server span parent %d, want client span %d", serve.Parent, call.SpanID)
	}
}

// TestTracedCallMessageUnstamped checks the caller's message is handed
// back unmodified: the trace stamp lives only on the wire.
func TestTracedCallMessageUnstamped(t *testing.T) {
	trace.SetEnabled(true)
	defer trace.SetEnabled(false)
	defer trace.Default.Reset()

	tr := NewInProc()
	if _, err := tr.Serve("s", echoHandler); err != nil {
		t.Fatal(err)
	}
	ep, err := tr.Dial("s")
	if err != nil {
		t.Fatal(err)
	}
	m := &wire.Message{Kind: wire.KindRequest, Method: "ping"}
	if _, err := ep.Call(m); err != nil {
		t.Fatal(err)
	}
	if m.TraceID != 0 || m.SpanID != 0 {
		t.Errorf("caller's message left stamped: trace %d span %d", m.TraceID, m.SpanID)
	}
}

// TestV1PeerReceivesTracedCall is the compatibility regression for the
// trace wire field: a legacy v1-framed peer sends and receives
// messages that carry (or ignore) trace context, and the call
// succeeds with the context dropped silently — never an error.
func TestV1PeerReceivesTracedCall(t *testing.T) {
	trace.SetEnabled(true)
	defer trace.SetEnabled(false)
	trace.Default.Reset()
	defer trace.Default.Reset()

	tr := NewTCP()
	ln, err := tr.Serve("", echoHandler)
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()

	// The legacy peer: raw v1 framing (bare length prefix), replaying a
	// traced request captured from a v2 caller.
	conn, err := net.Dial("tcp", ln.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	conn.SetDeadline(time.Now().Add(10 * time.Second))

	payload, err := (&wire.Message{
		Kind: wire.KindRequest, ID: 3, Method: "ping", Body: []byte("legacy"),
		TraceID: 0xABCD, SpanID: 0x1234,
	}).Marshal()
	if err != nil {
		t.Fatal(err)
	}
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], uint32(len(payload)))
	if _, err := conn.Write(append(hdr[:], payload...)); err != nil {
		t.Fatal(err)
	}
	if _, err := io.ReadFull(conn, hdr[:]); err != nil {
		t.Fatalf("reading response header: %v", err)
	}
	word := binary.BigEndian.Uint32(hdr[:])
	if word&0x80000000 != 0 {
		t.Fatal("response to a v1 request is v2-framed")
	}
	buf := make([]byte, word)
	if _, err := io.ReadFull(conn, buf); err != nil {
		t.Fatalf("reading response payload: %v", err)
	}
	resp, err := wire.UnmarshalMessage(buf)
	if err != nil {
		t.Fatalf("decoding response: %v", err)
	}
	if resp.Kind != wire.KindResponse || string(resp.Body) != "echo:legacy" {
		t.Fatalf("resp = %+v, want echo", resp)
	}
	// The context is not reflected back: responses carry no trace field
	// unless a handler explicitly stamps one.
	if resp.TraceID != 0 || resp.SpanID != 0 {
		t.Errorf("response carries trace context %d/%d, want dropped", resp.TraceID, resp.SpanID)
	}
	// But the server did adopt the incoming context for its own span.
	found := false
	for _, s := range trace.Default.Spans() {
		if s.Name == "transport.serve" && s.TraceID == 0xABCD && s.Parent == 0x1234 {
			found = true
		}
	}
	if !found {
		t.Error("server span did not adopt the legacy caller's trace context")
	}

	// And an old-style decoder (generic value decode, unknown fields
	// ignored) accepts the traced payload — what "v1 peer receives a
	// traced call" means at the message layer.
	if _, _, err := wire.DecodeValue(payload); err != nil {
		t.Fatalf("generic decode of traced payload: %v", err)
	}
}

// TestStatsTwoConcurrentTransports is the attribution regression: two
// transports carrying different traffic at once must each report only
// their own frames and bytes, while the buffer pool counters stay
// process-wide in wire.SnapshotPool.
func TestStatsTwoConcurrentTransports(t *testing.T) {
	serve := func() (*TCP, *TCP, Endpoint, func()) {
		srv := NewTCP()
		ln, err := srv.Serve("", echoHandler)
		if err != nil {
			t.Fatal(err)
		}
		cli := NewTCP()
		ep, err := cli.Dial(ln.Addr())
		if err != nil {
			ln.Close()
			t.Fatal(err)
		}
		return srv, cli, ep, func() { ep.Close(); ln.Close() }
	}
	srvA, cliA, epA, closeA := serve()
	defer closeA()
	srvB, cliB, epB, closeB := serve()
	defer closeB()

	const callsA, callsB = 24, 9
	bodyA := bytes.Repeat([]byte("a"), 512)
	bodyB := bytes.Repeat([]byte("b"), 64)
	var wg sync.WaitGroup
	wg.Add(2)
	go func() {
		defer wg.Done()
		for i := 0; i < callsA; i++ {
			if _, err := epA.Call(&wire.Message{Kind: wire.KindRequest, Body: bodyA}); err != nil {
				t.Error(err)
				return
			}
		}
	}()
	go func() {
		defer wg.Done()
		for i := 0; i < callsB; i++ {
			if _, err := epB.Call(&wire.Message{Kind: wire.KindRequest, Body: bodyB}); err != nil {
				t.Error(err)
				return
			}
		}
	}()
	wg.Wait()

	check := func(name string, st StatsSnapshot, calls int) {
		t.Helper()
		if st.FramesSent != uint64(calls) || st.FramesReceived != uint64(calls) {
			t.Errorf("%s: frames %d/%d, want %d/%d — counters leaked across transports",
				name, st.FramesSent, st.FramesReceived, calls, calls)
		}
		if st.InFlight != 0 {
			t.Errorf("%s: in_flight %d after drain", name, st.InFlight)
		}
	}
	check("clientA", cliA.Stats(), callsA)
	check("serverA", srvA.Stats(), callsA)
	check("clientB", cliB.Stats(), callsB)
	check("serverB", srvB.Stats(), callsB)
	if cliA.Stats().BytesSent <= cliB.Stats().BytesSent {
		t.Errorf("clientA bytes %d not > clientB bytes %d despite larger bodies",
			cliA.Stats().BytesSent, cliB.Stats().BytesSent)
	}
}

// TestDisabledTracingZeroStamp: with tracing off and no ctx span, the
// wire message must stay unstamped so encodings remain byte-identical
// to the pre-tracing format.
func TestDisabledTracingZeroStamp(t *testing.T) {
	trace.SetEnabled(false)
	var captured wire.Message
	h := HandlerFunc(func(m *wire.Message) *wire.Message {
		captured = *m
		return &wire.Message{Kind: wire.KindResponse, ID: m.ID}
	})
	tr := NewTCP()
	ln, err := tr.Serve("", h)
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	ep, err := tr.Dial(ln.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer ep.Close()
	if _, err := Call(context.Background(), ep, &wire.Message{Kind: wire.KindRequest}); err != nil {
		t.Fatal(err)
	}
	if captured.TraceID != 0 || captured.SpanID != 0 {
		t.Errorf("disabled path stamped the wire message: %d/%d", captured.TraceID, captured.SpanID)
	}
}
