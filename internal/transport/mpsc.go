package transport

import (
	"runtime"
	"sync"
	"sync/atomic"
	_ "unsafe" // for go:linkname (runtime semaphores)

	"partsvc/internal/metrics"
)

// Lock-free MPSC write queue. Every connection used to park outbound
// frames on a buffered `chan outFrame`; at data-plane rates the channel
// internals (chansend/sellock) were the next profile entries after
// syscalls. This queue replaces them with a Vyukov-style intrusive
// MPSC list: producers link nodes with one atomic swap + one atomic
// store (no lock, no CAS loop), and the single writer goroutine
// detaches consumed nodes in batches. Parking uses a raw runtime
// semaphore behind a Dekker-style status word, so the producer-side
// wake check is a single atomic load while the writer is running.
//
// Queue states (see DESIGN.md §5e):
//
//	open    — push links nodes, pop detaches them, the parker
//	          exchanges wakeups when the writer runs dry.
//	closed  — push refuses new frames (the caller recycles the
//	          payload); the writer drains what was linked before the
//	          close and exits.
//
// A push that races the close may link a node the writer's final drain
// has already passed; the node and its payload are reclaimed by the GC
// (a pool miss, never a correctness issue) — exactly the window the
// old channel version had.

//go:linkname runtime_Semacquire sync.runtime_Semacquire
func runtime_Semacquire(s *uint32)

//go:linkname runtime_Semrelease sync.runtime_Semrelease
func runtime_Semrelease(s *uint32, handoff bool, skipframes int)

const (
	parkerAwake uint32 = iota
	parkerParked
)

// parker blocks one goroutine on a runtime semaphore until another
// wakes it. The protocol is the classic store/load fence pair: the
// sleeper publishes "parked" and re-checks its wait condition; the
// waker publishes the condition and checks "parked". Sequential
// consistency of the atomics guarantees at least one side sees the
// other, so a wakeup is never lost. Spurious wakeups are possible (a
// waker from a previous cycle landing late) and callers must re-check
// their condition in a loop.
type parker struct {
	status atomic.Uint32
	sema   uint32
	// parks/wakes make the park/wake traffic observable (transport
	// Stats); nil disables counting.
	parks, wakes *metrics.ShardedCounter
}

// wake unparks the sleeper if it is (or is about to be) parked. The
// fast path — sleeper running — is one atomic load.
func (p *parker) wake() {
	if p.status.Load() == parkerParked && p.status.CompareAndSwap(parkerParked, parkerAwake) {
		if p.wakes != nil {
			p.wakes.Add(1)
		}
		// No handoff: the sleeper goes to the run queue instead of
		// preempting this producer. For the write queue this is the
		// batching lever — the producer (and its runnable peers) keep
		// queueing frames until the scheduler gets to the writer, which
		// then flushes them all in one writev.
		runtime_Semrelease(&p.sema, false, 0)
	}
}

// park blocks until wake, unless ready() already holds once the parked
// flag is published. Exactly one semaphore release pairs with each
// acquire: only the CAS winner (sleeper un-parking itself, or one
// waker) flips the status back.
func (p *parker) park(ready func() bool) {
	p.status.Store(parkerParked)
	if ready() {
		if p.status.CompareAndSwap(parkerParked, parkerAwake) {
			return // un-parked ourselves before any waker committed
		}
		// A waker won the CAS and released the semaphore: consume it
		// so the next park cycle starts balanced.
	}
	if p.parks != nil {
		p.parks.Add(1)
	}
	runtime_Semacquire(&p.sema)
}

// wqNode is one frame linked into a writeQueue. Nodes are pooled: a
// steady-state push/pop cycle allocates nothing.
type wqNode struct {
	next  atomic.Pointer[wqNode]
	frame outFrame
}

var wqNodePool = sync.Pool{New: func() any { return new(wqNode) }}

// writeQueue is the lock-free MPSC frame queue between the many
// producers of a connection (callers or pool workers) and its single
// writer goroutine.
type writeQueue struct {
	// tail is where producers link: swap in the new node, then point
	// the previous tail at it. Between the swap and the store the list
	// is momentarily disconnected; the consumer detects that window
	// (head caught up, tail moved on) and spins across it.
	tail atomic.Pointer[wqNode]
	_    [56]byte // keep producers' tail off the consumer's line

	// head is consumer-owned: the last node already consumed (its
	// frame has been returned; the live value sits in head.next).
	head *wqNode
	_    [56]byte

	size   atomic.Int64
	closed atomic.Bool
	p      parker
	stats  *Stats
}

// newWriteQueue returns an open queue reporting into stats (which may
// be nil in tests).
func newWriteQueue(stats *Stats) *writeQueue {
	q := &writeQueue{stats: stats}
	stub := wqNodePool.Get().(*wqNode)
	stub.frame = outFrame{}
	stub.next.Store(nil)
	q.head = stub
	q.tail.Store(stub)
	if stats != nil {
		q.p.parks = &stats.WriterParks
		q.p.wakes = &stats.WriterWakes
		stats.liveQueues.Store(q, struct{}{})
	}
	return q
}

// push links one frame. It never blocks. false means the queue is
// closed and the caller keeps ownership of the frame's payload.
func (q *writeQueue) push(f outFrame) bool {
	if q.closed.Load() {
		return false
	}
	n := wqNodePool.Get().(*wqNode)
	n.frame = f
	n.next.Store(nil)
	prev := q.tail.Swap(n)
	prev.next.Store(n)
	q.size.Add(1)
	q.p.wake()
	return true
}

// popBatch detaches up to max frames into dst (consumer only). It
// never blocks beyond the bounded mid-link spin.
func (q *writeQueue) popBatch(dst []outFrame, max int) []outFrame {
	popped := 0
	for len(dst) < max {
		h := q.head
		next := h.next.Load()
		if next == nil {
			if q.tail.Load() == h {
				break // truly empty
			}
			// A producer swapped tail but has not linked prev.next yet
			// (a two-instruction window): spin across it.
			for {
				if next = h.next.Load(); next != nil {
					break
				}
				runtime.Gosched()
			}
		}
		dst = append(dst, next.frame)
		next.frame = outFrame{} // new head must not retain the payload
		q.head = next
		// h.next is left stale: push resets next before linking a reused
		// node, so no atomic store is needed here.
		wqNodePool.Put(h)
		popped++
	}
	if popped > 0 {
		q.size.Add(int64(-popped))
	}
	return dst
}

// len returns the approximate queue depth (exact when quiescent).
func (q *writeQueue) len() int64 { return q.size.Load() }

// nonEmpty reports whether a pop could make progress (consumer only).
func (q *writeQueue) nonEmpty() bool {
	return q.head.next.Load() != nil || q.tail.Load() != q.head
}

// isClosed reports whether close has been called.
func (q *writeQueue) isClosed() bool { return q.closed.Load() }

// wqSpinYields bounds the scheduler-yield spin the consumer takes
// before parking on the semaphore: on a loaded endpoint the next frame
// is usually a few hundred nanoseconds away, and a yield is far
// cheaper than a park/wake round trip.
const wqSpinYields = 4

// wait blocks the consumer until the queue is non-empty or closed.
// May return spuriously; callers loop.
func (q *writeQueue) wait() {
	ready := func() bool { return q.nonEmpty() || q.closed.Load() }
	for i := 0; i < wqSpinYields; i++ {
		if ready() {
			return
		}
		runtime.Gosched()
	}
	q.p.park(ready)
}

// close marks the queue closed and wakes the consumer so it can run
// its final drain. Pushes racing the close either fail (caller keeps
// the payload) or land in the drain window described above.
func (q *writeQueue) close() {
	q.closed.Store(true)
	if q.stats != nil {
		q.stats.liveQueues.Delete(q)
	}
	q.p.wake()
}

// drain pops everything currently linked and hands each frame to
// discard (consumer only; used on the writer's failure path).
func (q *writeQueue) drain(discard func(outFrame)) {
	var batch [32]outFrame
	for {
		got := q.popBatch(batch[:0], len(batch))
		if len(got) == 0 {
			return
		}
		for _, f := range got {
			discard(f)
		}
	}
}
