package transport

import (
	"context"
	"strings"
	"time"

	"partsvc/internal/metrics"
	"partsvc/internal/trace"
	"partsvc/internal/wire"
)

// Observability hooks shared by the TCP and in-process transports.
//
// The client side starts a "transport.call" span (parented on whatever
// span rides in ctx) and stamps its context into the outgoing message,
// so the serving side can continue the trace; the server side starts a
// "transport.serve" span from the stamped fields and re-stamps the
// request so the handler's own spans parent on it. Per-method latency
// histograms ("rpc.client.<method>", "rpc.server.<method>") land in
// metrics.DefaultRegistry.
//
// Everything here is gated so the disabled path costs one atomic load
// (plus a context value lookup on the client): the CI guard holds this
// below 2% of an RPC.

// clientObs carries one call's observation state across the call.
type clientObs struct {
	span         *trace.Span
	histo        *metrics.Histogram
	begin        time.Time
	prevT, prevS uint64
	stamped      bool
}

// beginClientCall starts the client-side span and histogram timer and
// stamps the span context into m (restored by end, so callers can
// reuse or re-send the message).
func beginClientCall(ctx context.Context, m *wire.Message) (context.Context, clientObs) {
	var o clientObs
	ctx, o.span = trace.Start(ctx, "transport.call")
	if o.span != nil {
		if m.Method != "" {
			o.span.SetAttr("method", m.Method)
		}
		o.prevT, o.prevS = m.TraceID, m.SpanID
		sc := o.span.Context()
		m.TraceID, m.SpanID = sc.TraceID, sc.SpanID
		o.stamped = true
	}
	if trace.Enabled() {
		o.histo = metrics.DefaultRegistry.Histogram("rpc.client." + methodLabel(m.Method))
		o.begin = time.Now()
	}
	return ctx, o
}

// end closes out the call's observation: message restored, span ended,
// latency observed.
func (o *clientObs) end(m *wire.Message, err error) {
	if o.stamped {
		m.TraceID, m.SpanID = o.prevT, o.prevS
	}
	if o.span != nil {
		if err != nil {
			o.span.SetAttr("error", err.Error())
		}
		o.span.End()
	}
	if o.histo != nil {
		o.histo.Observe(float64(time.Since(o.begin)) / float64(time.Millisecond))
	}
}

// serveObserved wraps one handler invocation in a "transport.serve"
// span continuing the trace stamped in req (a fresh root when the
// caller sent none), re-stamping req so handler-side spans parent on
// it. Server-side observation rides entirely on the global switch:
// there is no caller context to carry a tracer across the wire.
func serveObserved(h Handler, req *wire.Message) *wire.Message {
	if !trace.Enabled() {
		return h.Handle(req)
	}
	span := trace.Default.StartSpan(trace.SpanContext{TraceID: req.TraceID, SpanID: req.SpanID}, "transport.serve")
	if req.Method != "" {
		// The span ring outlives the request; server requests are
		// slab-backed (zero-copy), so the attribute must own its bytes.
		span.SetAttr("method", strings.Clone(req.Method))
	}
	prevT, prevS := req.TraceID, req.SpanID
	sc := span.Context()
	req.TraceID, req.SpanID = sc.TraceID, sc.SpanID
	histo := metrics.DefaultRegistry.Histogram("rpc.server." + methodLabel(req.Method))
	begin := time.Now()
	resp := h.Handle(req)
	histo.Observe(float64(time.Since(begin)) / float64(time.Millisecond))
	req.TraceID, req.SpanID = prevT, prevS
	span.End()
	return resp
}

// methodLabel names the histogram for a method ("unknown" for
// methodless messages, so coherence pushes still aggregate somewhere).
func methodLabel(m string) string {
	if m == "" {
		return "unknown"
	}
	return m
}
