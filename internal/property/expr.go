package property

import (
	"fmt"
	"strconv"
	"strings"
)

// Scope is the environment against which expressions and conditions are
// evaluated at planning time. Node holds the service-relevant properties
// of the candidate node (translated from its credentials), Link those of
// the link (or path) environment, and Extra any request-scoped
// properties (e.g. the requesting user).
type Scope struct {
	Node  Set
	Link  Set
	Extra Set
}

// Lookup resolves a dotted reference such as "Node.TrustLevel",
// "Link.Confidentiality", or a bare name (searched in Extra, then Node,
// then Link).
func (sc Scope) Lookup(ref string) (Value, bool) {
	if dot := strings.IndexByte(ref, '.'); dot >= 0 {
		space, name := ref[:dot], ref[dot+1:]
		switch space {
		case "Node":
			v, ok := sc.Node[name]
			return v, ok
		case "Link", "Env":
			v, ok := sc.Link[name]
			return v, ok
		default:
			return Value{}, false
		}
	}
	for _, s := range []Set{sc.Extra, sc.Node, sc.Link} {
		if v, ok := s[ref]; ok {
			return v, true
		}
	}
	return Value{}, false
}

// Expr is a property-value expression in a service specification: either
// a literal value or a reference into the deployment environment, such
// as the Factors clause "TrustLevel = Node.TrustLevel" of the
// ViewMailServer in Figure 2.
type Expr struct {
	lit Value
	ref string
}

// Lit returns a literal expression.
func Lit(v Value) Expr { return Expr{lit: v} }

// Ref returns an environment-reference expression. The reference uses
// dotted notation ("Node.TrustLevel") or a bare property name.
func Ref(name string) Expr { return Expr{ref: name} }

// IsRef reports whether the expression is an environment reference.
func (e Expr) IsRef() bool { return e.ref != "" }

// RefName returns the reference name, or "" for literal expressions.
func (e Expr) RefName() string { return e.ref }

// LitValue returns the literal value, or an invalid Value for references.
func (e Expr) LitValue() Value { return e.lit }

// IsZero reports whether the expression is empty (neither literal nor
// reference).
func (e Expr) IsZero() bool { return e.ref == "" && !e.lit.IsValid() }

// Eval resolves the expression against a scope.
func (e Expr) Eval(sc Scope) (Value, error) {
	if e.ref == "" {
		if !e.lit.IsValid() {
			return Value{}, fmt.Errorf("property: empty expression")
		}
		return e.lit, nil
	}
	v, ok := sc.Lookup(e.ref)
	if !ok {
		return Value{}, fmt.Errorf("property: reference %q not bound in scope", e.ref)
	}
	return v, nil
}

// String renders the expression in specification notation.
func (e Expr) String() string {
	if e.ref != "" {
		return e.ref
	}
	return e.lit.String()
}

// ParseExpr parses the specification notation for expressions: a dotted
// or known environment reference (contains '.') becomes a Ref, anything
// else a literal parsed with Parse.
func ParseExpr(text string) Expr {
	text = strings.TrimSpace(text)
	if strings.Contains(text, ".") {
		return Ref(text)
	}
	return Lit(Parse(text))
}

// ConstraintOp enumerates the relations a Condition can assert.
type ConstraintOp int

const (
	// OpEq asserts the subject equals (for strings) or satisfies (for
	// ordered kinds) the expression value.
	OpEq ConstraintOp = iota
	// OpExact asserts strict equality regardless of kind ordering.
	OpExact
	// OpIn asserts the subject is an integer within [Lo, Hi].
	OpIn
	// OpGE asserts the subject is an integer >= Lo.
	OpGE
)

// Condition is a deployment condition (the Conditions keyword of the
// specification): it constrains an environment property, gating where a
// component may be instantiated. For example, the MailClient's
// "User = Alice" access-control condition, or the ViewMailServer's
// "Node.TrustLevel in (2,5)" trust condition.
type Condition struct {
	// Subject is the property reference being constrained, e.g.
	// "Node.TrustLevel" or "User".
	Subject string
	// Op is the asserted relation.
	Op ConstraintOp
	// Arg is the right-hand expression for OpEq/OpExact.
	Arg Expr
	// Lo and Hi bound OpIn; Lo alone is used by OpGE.
	Lo, Hi int64
}

// CondEq builds an equality/satisfaction condition.
func CondEq(subject string, v Value) Condition {
	return Condition{Subject: subject, Op: OpEq, Arg: Lit(v)}
}

// CondExact builds a strict-equality condition.
func CondExact(subject string, v Value) Condition {
	return Condition{Subject: subject, Op: OpExact, Arg: Lit(v)}
}

// CondIn builds an interval-membership condition (inclusive bounds).
func CondIn(subject string, lo, hi int64) Condition {
	return Condition{Subject: subject, Op: OpIn, Lo: lo, Hi: hi}
}

// CondGE builds a lower-bound condition.
func CondGE(subject string, lo int64) Condition {
	return Condition{Subject: subject, Op: OpGE, Lo: lo}
}

// Holds evaluates the condition against the scope. Unresolvable subjects
// fail the condition (a node that does not present a property cannot
// satisfy a constraint on it).
func (c Condition) Holds(sc Scope) bool {
	actual, ok := sc.Lookup(c.Subject)
	if !ok {
		return false
	}
	switch c.Op {
	case OpEq:
		want, err := c.Arg.Eval(sc)
		if err != nil {
			return false
		}
		return actual.Satisfies(want)
	case OpExact:
		want, err := c.Arg.Eval(sc)
		if err != nil {
			return false
		}
		return actual.Equal(want)
	case OpIn:
		i, ok := actual.AsInt()
		return ok && i >= c.Lo && i <= c.Hi
	case OpGE:
		i, ok := actual.AsInt()
		return ok && i >= c.Lo
	}
	return false
}

// String renders the condition in specification notation.
func (c Condition) String() string {
	switch c.Op {
	case OpEq:
		return fmt.Sprintf("%s = %s", c.Subject, c.Arg)
	case OpExact:
		return fmt.Sprintf("%s == %s", c.Subject, c.Arg)
	case OpIn:
		return fmt.Sprintf("%s in (%d,%d)", c.Subject, c.Lo, c.Hi)
	case OpGE:
		return fmt.Sprintf("%s >= %d", c.Subject, c.Lo)
	}
	return c.Subject + " <invalid>"
}

// ParseCondition parses the textual condition forms used in
// specifications: "X = v", "X == v", "X in (lo,hi)", "X >= n".
func ParseCondition(text string) (Condition, error) {
	text = strings.TrimSpace(text)
	for _, sep := range []struct {
		tok string
		op  ConstraintOp
	}{{" in ", OpIn}, {">=", OpGE}, {"==", OpExact}, {"=", OpEq}} {
		idx := strings.Index(text, sep.tok)
		if idx < 0 {
			continue
		}
		subject := strings.TrimSpace(text[:idx])
		rhs := strings.TrimSpace(text[idx+len(sep.tok):])
		if subject == "" || rhs == "" {
			return Condition{}, fmt.Errorf("property: malformed condition %q", text)
		}
		switch sep.op {
		case OpIn:
			lo, hi, err := parseRange(rhs)
			if err != nil {
				return Condition{}, fmt.Errorf("property: condition %q: %w", text, err)
			}
			return CondIn(subject, lo, hi), nil
		case OpGE:
			n, err := strconv.ParseInt(rhs, 10, 64)
			if err != nil {
				return Condition{}, fmt.Errorf("property: condition %q: bad bound: %w", text, err)
			}
			return CondGE(subject, n), nil
		case OpExact:
			return Condition{Subject: subject, Op: OpExact, Arg: ParseExpr(rhs)}, nil
		default:
			return Condition{Subject: subject, Op: OpEq, Arg: ParseExpr(rhs)}, nil
		}
	}
	return Condition{}, fmt.Errorf("property: malformed condition %q", text)
}

func parseRange(text string) (lo, hi int64, err error) {
	text = strings.TrimSpace(text)
	if len(text) < 2 || text[0] != '(' || text[len(text)-1] != ')' {
		return 0, 0, fmt.Errorf("range %q must be of the form (lo,hi)", text)
	}
	parts := strings.Split(text[1:len(text)-1], ",")
	if len(parts) != 2 {
		return 0, 0, fmt.Errorf("range %q must have two bounds", text)
	}
	lo, err = strconv.ParseInt(strings.TrimSpace(parts[0]), 10, 64)
	if err != nil {
		return 0, 0, fmt.Errorf("range %q: bad lower bound: %w", text, err)
	}
	hi, err = strconv.ParseInt(strings.TrimSpace(parts[1]), 10, 64)
	if err != nil {
		return 0, 0, fmt.Errorf("range %q: bad upper bound: %w", text, err)
	}
	if hi < lo {
		return 0, 0, fmt.Errorf("range %q: upper bound below lower bound", text)
	}
	return lo, hi, nil
}
