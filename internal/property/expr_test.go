package property

import "testing"

func testScope() Scope {
	return Scope{
		Node:  Set{"TrustLevel": Int(4), "User": Str("Alice")},
		Link:  Set{"Confidentiality": Bool(false)},
		Extra: Set{"Requested": Str("ClientInterface")},
	}
}

func TestScopeLookupDotted(t *testing.T) {
	sc := testScope()
	if v, ok := sc.Lookup("Node.TrustLevel"); !ok || !v.Equal(Int(4)) {
		t.Errorf("Node.TrustLevel = %v, %v", v, ok)
	}
	if v, ok := sc.Lookup("Link.Confidentiality"); !ok || !v.Equal(Bool(false)) {
		t.Errorf("Link.Confidentiality = %v, %v", v, ok)
	}
	if v, ok := sc.Lookup("Env.Confidentiality"); !ok || !v.Equal(Bool(false)) {
		t.Errorf("Env alias must resolve to link scope: %v, %v", v, ok)
	}
	if _, ok := sc.Lookup("Node.Missing"); ok {
		t.Error("missing dotted name must not resolve")
	}
	if _, ok := sc.Lookup("Unknown.X"); ok {
		t.Error("unknown namespace must not resolve")
	}
}

func TestScopeLookupBare(t *testing.T) {
	sc := testScope()
	if v, ok := sc.Lookup("User"); !ok || !v.Equal(Str("Alice")) {
		t.Errorf("bare User = %v, %v", v, ok)
	}
	if v, ok := sc.Lookup("Requested"); !ok || !v.Equal(Str("ClientInterface")) {
		t.Errorf("bare lookup must search Extra first: %v, %v", v, ok)
	}
	if v, ok := sc.Lookup("Confidentiality"); !ok || !v.Equal(Bool(false)) {
		t.Errorf("bare lookup falls through to link scope: %v, %v", v, ok)
	}
	if _, ok := sc.Lookup("Nope"); ok {
		t.Error("unbound bare name must not resolve")
	}
}

func TestExprEval(t *testing.T) {
	sc := testScope()
	if v, err := Lit(Int(7)).Eval(sc); err != nil || !v.Equal(Int(7)) {
		t.Errorf("literal eval = %v, %v", v, err)
	}
	if v, err := Ref("Node.TrustLevel").Eval(sc); err != nil || !v.Equal(Int(4)) {
		t.Errorf("ref eval = %v, %v", v, err)
	}
	if _, err := Ref("Node.Missing").Eval(sc); err == nil {
		t.Error("unbound ref must error")
	}
	if _, err := (Expr{}).Eval(sc); err == nil {
		t.Error("zero expression must error")
	}
}

func TestExprAccessors(t *testing.T) {
	r := Ref("Node.X")
	if !r.IsRef() || r.RefName() != "Node.X" || r.IsZero() {
		t.Error("Ref accessors wrong")
	}
	l := Lit(Bool(true))
	if l.IsRef() || !l.LitValue().Equal(Bool(true)) || l.IsZero() {
		t.Error("Lit accessors wrong")
	}
	if !(Expr{}).IsZero() {
		t.Error("zero Expr must report IsZero")
	}
}

func TestParseExpr(t *testing.T) {
	if e := ParseExpr("Node.TrustLevel"); !e.IsRef() || e.RefName() != "Node.TrustLevel" {
		t.Errorf("ParseExpr ref = %v", e)
	}
	if e := ParseExpr("T"); e.IsRef() || !e.LitValue().Equal(Bool(true)) {
		t.Errorf("ParseExpr T = %v", e)
	}
	if e := ParseExpr(" 4 "); !e.LitValue().Equal(Int(4)) {
		t.Errorf("ParseExpr 4 = %v", e)
	}
	if e := ParseExpr("Alice"); !e.LitValue().Equal(Str("Alice")) {
		t.Errorf("ParseExpr Alice = %v", e)
	}
}

func TestConditionHolds(t *testing.T) {
	sc := testScope()
	cases := []struct {
		c    Condition
		want bool
	}{
		{CondEq("User", Str("Alice")), true},
		{CondEq("User", Str("Bob")), false},
		{CondEq("Node.TrustLevel", Int(3)), true}, // satisfaction: 4 >= 3
		{CondExact("Node.TrustLevel", Int(3)), false},
		{CondExact("Node.TrustLevel", Int(4)), true},
		{CondIn("Node.TrustLevel", 2, 5), true},
		{CondIn("Node.TrustLevel", 1, 3), false},
		{CondGE("Node.TrustLevel", 4), true},
		{CondGE("Node.TrustLevel", 5), false},
		{CondEq("Missing", Str("x")), false},
		{CondIn("User", 1, 5), false}, // non-int subject fails interval
	}
	for _, c := range cases {
		if got := c.c.Holds(sc); got != c.want {
			t.Errorf("condition %v holds = %v, want %v", c.c, got, c.want)
		}
	}
}

func TestConditionString(t *testing.T) {
	for _, c := range []struct {
		c    Condition
		want string
	}{
		{CondEq("User", Str("Alice")), "User = Alice"},
		{CondExact("X", Int(2)), "X == 2"},
		{CondIn("Node.TrustLevel", 1, 3), "Node.TrustLevel in (1,3)"},
		{CondGE("Node.TrustLevel", 2), "Node.TrustLevel >= 2"},
	} {
		if got := c.c.String(); got != c.want {
			t.Errorf("String() = %q, want %q", got, c.want)
		}
	}
}

func TestParseCondition(t *testing.T) {
	cases := []struct {
		text string
		want Condition
	}{
		{"User = Alice", CondEq("User", Str("Alice"))},
		{"X == 2", CondExact("X", Int(2))},
		{"Node.TrustLevel in (1,3)", CondIn("Node.TrustLevel", 1, 3)},
		{"Node.TrustLevel >= 2", CondGE("Node.TrustLevel", 2)},
	}
	for _, c := range cases {
		got, err := ParseCondition(c.text)
		if err != nil {
			t.Errorf("ParseCondition(%q) error: %v", c.text, err)
			continue
		}
		if got.String() != c.want.String() {
			t.Errorf("ParseCondition(%q) = %v, want %v", c.text, got, c.want)
		}
	}
	for _, bad := range []string{"", "no-relation", "X in (3,1)", "X in [1,3]", "X in (a,b)", "X >= q", " = v"} {
		if _, err := ParseCondition(bad); err == nil {
			t.Errorf("ParseCondition(%q) must fail", bad)
		}
	}
}

func TestParseConditionRefRHS(t *testing.T) {
	c, err := ParseCondition("TrustLevel = Node.TrustLevel")
	if err != nil {
		t.Fatal(err)
	}
	if !c.Arg.IsRef() || c.Arg.RefName() != "Node.TrustLevel" {
		t.Errorf("RHS reference not parsed: %v", c)
	}
	if !c.Holds(testScope()) {
		t.Error("self-referential condition must hold (4 satisfies 4)")
	}
}
