package property

import (
	"strings"
	"testing"
)

func TestBoolTypeCheck(t *testing.T) {
	ty := BoolType("Confidentiality")
	if err := ty.Check(Bool(true)); err != nil {
		t.Errorf("T must be allowed: %v", err)
	}
	if err := ty.Check(Int(1)); err == nil {
		t.Error("int must be rejected by a Boolean declaration")
	}
}

func TestIntervalTypeCheck(t *testing.T) {
	ty := IntervalType("TrustLevel", 1, 5)
	for i := int64(1); i <= 5; i++ {
		if err := ty.Check(Int(i)); err != nil {
			t.Errorf("value %d in (1,5) must be allowed: %v", i, err)
		}
	}
	if err := ty.Check(Int(0)); err == nil {
		t.Error("0 must be rejected by range (1,5)")
	}
	if err := ty.Check(Int(6)); err == nil {
		t.Error("6 must be rejected by range (1,5)")
	}
	if err := ty.Check(Str("3")); err == nil {
		t.Error("string must be rejected by an interval declaration")
	}
}

func TestStringAndEnumTypeCheck(t *testing.T) {
	st := StringType("User")
	if err := st.Check(Str("anything")); err != nil {
		t.Errorf("unconstrained string must allow any value: %v", err)
	}
	et := EnumType("Codec", "h261", "mjpeg")
	if err := et.Check(Str("h261")); err != nil {
		t.Errorf("enumerated value must be allowed: %v", err)
	}
	if err := et.Check(Str("vp9")); err == nil {
		t.Error("non-enumerated value must be rejected")
	}
}

func TestTypeValuesEnumeration(t *testing.T) {
	if got := BoolType("C").Values(); len(got) != 2 {
		t.Errorf("Boolean enumerates 2 values, got %d", len(got))
	}
	got := IntervalType("TL", 1, 5).Values()
	if len(got) != 5 || !got[0].Equal(Int(1)) || !got[4].Equal(Int(5)) {
		t.Errorf("interval (1,5) enumerates [1..5], got %v", got)
	}
	if got := StringType("U").Values(); got != nil {
		t.Errorf("unconstrained string must be unbounded (nil), got %v", got)
	}
	if got := EnumType("E", "a", "b").Values(); len(got) != 2 {
		t.Errorf("enum enumerates its members, got %v", got)
	}
	if got := IntervalType("bad", 5, 1).Values(); got != nil {
		t.Errorf("empty interval enumerates nothing, got %v", got)
	}
}

func TestTypeString(t *testing.T) {
	for _, c := range []struct {
		ty   Type
		want string
	}{
		{BoolType("C"), "C: Boolean {T,F}"},
		{IntervalType("TL", 1, 5), "TL: Interval (1,5)"},
		{StringType("U"), "U: String"},
		{EnumType("E", "a", "b"), "E: Enum {a,b}"},
	} {
		if got := c.ty.String(); got != c.want {
			t.Errorf("String() = %q, want %q", got, c.want)
		}
	}
}

func TestSetCloneIndependence(t *testing.T) {
	s := Set{"A": Int(1)}
	c := s.Clone()
	c["A"] = Int(2)
	c["B"] = Int(3)
	if !s["A"].Equal(Int(1)) || len(s) != 1 {
		t.Error("Clone must be independent of the original")
	}
}

func TestSetMerge(t *testing.T) {
	s := Set{"A": Int(1), "B": Int(2)}
	m := s.Merge(Set{"B": Int(9), "C": Int(3)})
	if !m["A"].Equal(Int(1)) || !m["B"].Equal(Int(9)) || !m["C"].Equal(Int(3)) {
		t.Errorf("Merge result wrong: %v", m)
	}
	if !s["B"].Equal(Int(2)) {
		t.Error("Merge must not mutate the receiver")
	}
}

func TestSetSatisfies(t *testing.T) {
	impl := Set{"Confidentiality": Bool(true), "TrustLevel": Int(5)}
	if !impl.Satisfies(Set{"TrustLevel": Int(4)}) {
		t.Error("TL 5 must satisfy required TL 4")
	}
	if !impl.Satisfies(Set{"Confidentiality": Bool(true), "TrustLevel": Int(5)}) {
		t.Error("exact match must satisfy")
	}
	if !impl.Satisfies(nil) {
		t.Error("empty requirement is always satisfied")
	}
	if impl.Satisfies(Set{"Missing": Int(1)}) {
		t.Error("requirement on an absent property must fail")
	}
	if impl.Satisfies(Set{"TrustLevel": Int(6)}) {
		t.Error("insufficient value must fail")
	}
}

func TestSetFingerprintStable(t *testing.T) {
	a := Set{"B": Int(2), "A": Bool(true)}
	b := Set{"A": Bool(true), "B": Int(2)}
	if a.Fingerprint() != b.Fingerprint() {
		t.Error("fingerprints must be order-independent")
	}
	if a.Fingerprint() != "A=T;B=2" {
		t.Errorf("fingerprint = %q", a.Fingerprint())
	}
	if (Set{}).Fingerprint() != "" {
		t.Error("empty set fingerprint must be empty")
	}
}

func TestSetString(t *testing.T) {
	s := Set{"B": Int(2), "A": Bool(true)}
	got := s.String()
	if !strings.Contains(got, "A=T") || !strings.Contains(got, "B=2") {
		t.Errorf("Set.String() = %q", got)
	}
	if strings.Index(got, "A=") > strings.Index(got, "B=") {
		t.Errorf("Set.String() must be sorted: %q", got)
	}
}
