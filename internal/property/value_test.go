package property

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

func TestValueConstructorsAndAccessors(t *testing.T) {
	b := Bool(true)
	if got, ok := b.AsBool(); !ok || !got {
		t.Fatalf("Bool(true).AsBool() = %v, %v", got, ok)
	}
	if _, ok := b.AsInt(); ok {
		t.Fatal("Bool value must not report as int")
	}
	i := Int(42)
	if got, ok := i.AsInt(); !ok || got != 42 {
		t.Fatalf("Int(42).AsInt() = %v, %v", got, ok)
	}
	s := Str("Alice")
	if got, ok := s.AsString(); !ok || got != "Alice" {
		t.Fatalf("Str(Alice).AsString() = %v, %v", got, ok)
	}
	var zero Value
	if zero.IsValid() {
		t.Fatal("zero Value must be invalid")
	}
	if !b.IsValid() || !i.IsValid() || !s.IsValid() {
		t.Fatal("constructed values must be valid")
	}
}

func TestValueString(t *testing.T) {
	cases := []struct {
		v    Value
		want string
	}{
		{Bool(true), "T"},
		{Bool(false), "F"},
		{Int(5), "5"},
		{Int(-3), "-3"},
		{Str("x"), "x"},
		{Value{}, "<invalid>"},
	}
	for _, c := range cases {
		if got := c.v.String(); got != c.want {
			t.Errorf("%#v.String() = %q, want %q", c.v, got, c.want)
		}
	}
}

func TestParseRoundTrip(t *testing.T) {
	cases := []struct {
		text string
		want Value
	}{
		{"T", Bool(true)},
		{"F", Bool(false)},
		{"7", Int(7)},
		{"-2", Int(-2)},
		{"Alice", Str("Alice")},
		{"true", Str("true")}, // only T/F are Booleans in spec notation
	}
	for _, c := range cases {
		if got := Parse(c.text); !got.Equal(c.want) {
			t.Errorf("Parse(%q) = %v, want %v", c.text, got, c.want)
		}
	}
}

func TestSatisfiesBool(t *testing.T) {
	// impl >= req under F < T.
	if !Bool(true).Satisfies(Bool(true)) {
		t.Error("T must satisfy T")
	}
	if !Bool(true).Satisfies(Bool(false)) {
		t.Error("T must satisfy F")
	}
	if Bool(false).Satisfies(Bool(true)) {
		t.Error("F must not satisfy T")
	}
	if !Bool(false).Satisfies(Bool(false)) {
		t.Error("F must satisfy F")
	}
}

func TestSatisfiesInt(t *testing.T) {
	if !Int(5).Satisfies(Int(4)) {
		t.Error("TrustLevel 5 must satisfy a requirement of 4")
	}
	if Int(3).Satisfies(Int(4)) {
		t.Error("TrustLevel 3 must not satisfy a requirement of 4")
	}
	if !Int(4).Satisfies(Int(4)) {
		t.Error("equal values must satisfy")
	}
}

func TestSatisfiesKindMismatchAndInvalid(t *testing.T) {
	if Int(1).Satisfies(Bool(true)) {
		t.Error("kind mismatch must not satisfy")
	}
	if Str("T").Satisfies(Bool(true)) {
		t.Error("string T must not satisfy Boolean T")
	}
	var zero Value
	if zero.Satisfies(zero) {
		t.Error("invalid must not satisfy invalid")
	}
	if Bool(true).Satisfies(zero) {
		t.Error("nothing satisfies an invalid requirement")
	}
}

func TestSatisfiesString(t *testing.T) {
	if !Str("Alice").Satisfies(Str("Alice")) {
		t.Error("equal strings must satisfy")
	}
	if Str("Bob").Satisfies(Str("Alice")) {
		t.Error("unequal strings must not satisfy")
	}
}

func TestMinMax(t *testing.T) {
	if got := Min(Int(3), Int(5)); !got.Equal(Int(3)) {
		t.Errorf("Min(3,5) = %v", got)
	}
	if got := Max(Int(3), Int(5)); !got.Equal(Int(5)) {
		t.Errorf("Max(3,5) = %v", got)
	}
	if got := Min(Bool(true), Bool(false)); !got.Equal(Bool(false)) {
		t.Errorf("Min(T,F) = %v", got)
	}
	if got := Max(Bool(true), Bool(false)); !got.Equal(Bool(true)) {
		t.Errorf("Max(T,F) = %v", got)
	}
	if Min(Int(1), Bool(true)).IsValid() {
		t.Error("Min across kinds must be invalid")
	}
	if Max(Str("a"), Str("b")).IsValid() {
		t.Error("Max of strings must be invalid (not orderable)")
	}
}

func TestMustKindPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MustKind must panic on kind mismatch")
		}
	}()
	Int(1).MustKind(KindBool)
}

func TestKindString(t *testing.T) {
	for k, want := range map[Kind]string{
		KindBool: "bool", KindInt: "interval", KindString: "string", KindInvalid: "invalid",
	} {
		if got := k.String(); got != want {
			t.Errorf("Kind(%d).String() = %q, want %q", k, got, want)
		}
	}
}

// randomValue generates an arbitrary valid Value for property-based tests.
func randomValue(r *rand.Rand) Value {
	switch r.Intn(3) {
	case 0:
		return Bool(r.Intn(2) == 0)
	case 1:
		return Int(int64(r.Intn(21) - 10))
	default:
		return Str(string(rune('a' + r.Intn(26))))
	}
}

// valueGen adapts randomValue to testing/quick.
type valueGen struct{ V Value }

// Generate implements quick.Generator.
func (valueGen) Generate(r *rand.Rand, _ int) reflect.Value {
	return reflect.ValueOf(valueGen{V: randomValue(r)})
}

func TestQuickSatisfiesReflexive(t *testing.T) {
	f := func(g valueGen) bool { return g.V.Satisfies(g.V) }
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestQuickSatisfiesTransitive(t *testing.T) {
	f := func(a, b, c valueGen) bool {
		if a.V.Satisfies(b.V) && b.V.Satisfies(c.V) {
			return a.V.Satisfies(c.V)
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

func TestQuickParseStringRoundTrip(t *testing.T) {
	f := func(g valueGen) bool {
		// Rendering then parsing any generated value yields an equal value.
		return Parse(g.V.String()).Equal(g.V)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestQuickMinMaxAgreeWithSatisfies(t *testing.T) {
	f := func(a, b valueGen) bool {
		if a.V.Kind() != b.V.Kind() || a.V.Kind() == KindString {
			return true
		}
		lo, hi := Min(a.V, b.V), Max(a.V, b.V)
		// max satisfies min, and both inputs satisfy min.
		return hi.Satisfies(lo) && a.V.Satisfies(lo) && b.V.Satisfies(lo) &&
			hi.Satisfies(a.V) && hi.Satisfies(b.V)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}
