package property

import (
	"fmt"
	"strings"
)

// Pattern matches a value in a modification rule. The paper's Figure 4
// uses literal values and the wildcard ANY.
type Pattern struct {
	any bool
	lit Value
}

// Any is the wildcard pattern, matching every value.
var Any = Pattern{any: true}

// Exactly returns a pattern matching only v.
func Exactly(v Value) Pattern { return Pattern{lit: v} }

// Matches reports whether the pattern matches v.
func (p Pattern) Matches(v Value) bool { return p.any || p.lit.Equal(v) }

// String renders the pattern in Figure 4 notation.
func (p Pattern) String() string {
	if p.any {
		return "ANY"
	}
	return p.lit.String()
}

// Outcome computes the output value of a modification rule from the
// input (implemented) value and the environment value.
type Outcome struct {
	kind outKind
	lit  Value
}

type outKind int

const (
	outLit outKind = iota
	outIn
	outEnv
	outMin
	outMax
)

// OutLit yields the fixed value v.
func OutLit(v Value) Outcome { return Outcome{kind: outLit, lit: v} }

// OutIn passes the input value through unchanged.
var OutIn = Outcome{kind: outIn}

// OutEnv yields the environment value.
var OutEnv = Outcome{kind: outEnv}

// OutMin yields min(input, environment); this models properties such as
// TrustLevel that are capped by the weakest environment they cross.
var OutMin = Outcome{kind: outMin}

// OutMax yields max(input, environment).
var OutMax = Outcome{kind: outMax}

// Apply computes the outcome value.
func (o Outcome) Apply(in, env Value) Value {
	switch o.kind {
	case outLit:
		return o.lit
	case outIn:
		return in
	case outEnv:
		return env
	case outMin:
		return Min(in, env)
	case outMax:
		return Max(in, env)
	}
	return Value{}
}

// String renders the outcome.
func (o Outcome) String() string {
	switch o.kind {
	case outLit:
		return o.lit.String()
	case outIn:
		return "IN"
	case outEnv:
		return "ENV"
	case outMin:
		return "MIN"
	case outMax:
		return "MAX"
	}
	return "<invalid>"
}

// Rule is one row of a property modification table: when the input and
// environment values match the patterns, the output is computed by the
// outcome. Figure 4's Confidentiality table is, in this notation:
//
//	(In: T) x (Env: T) = (Out: T)
//	(In: F) x (Env: ANY) = (Out: F)
//	(In: ANY) x (Env: F) = (Out: F)
type Rule struct {
	In  Pattern
	Env Pattern
	Out Outcome
}

// String renders the rule in Figure 4 notation.
func (r Rule) String() string {
	return fmt.Sprintf("(In: %s) x (Env: %s) = (Out: %s)", r.In, r.Env, r.Out)
}

// ModRule is a named property modification rule: an ordered rule table
// for one property. Rules are tried in order; the first match wins.
type ModRule struct {
	// Property names the property the table modifies.
	Property string
	// Rules is the ordered rule table.
	Rules []Rule
	// Default, when set, is used when no rule matches. When unset,
	// a non-matching application is an error.
	Default *Outcome
}

// Apply transforms the implemented value in across an environment whose
// relevant property value is env. A missing environment value (invalid
// env) means the environment does not constrain the property; the input
// passes through unchanged.
func (m ModRule) Apply(in, env Value) (Value, error) {
	if !env.IsValid() {
		return in, nil
	}
	for _, r := range m.Rules {
		if r.In.Matches(in) && r.Env.Matches(env) {
			out := r.Out.Apply(in, env)
			if !out.IsValid() {
				return Value{}, fmt.Errorf("property: rule %v for %s produced invalid value from in=%v env=%v", r, m.Property, in, env)
			}
			return out, nil
		}
	}
	if m.Default != nil {
		out := m.Default.Apply(in, env)
		if !out.IsValid() {
			return Value{}, fmt.Errorf("property: default outcome for %s produced invalid value from in=%v env=%v", m.Property, in, env)
		}
		return out, nil
	}
	return Value{}, fmt.Errorf("property: no modification rule for %s matches in=%v env=%v", m.Property, in, env)
}

// String renders the table in specification notation.
func (m ModRule) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "PropertyModificationRule %s:", m.Property)
	for _, r := range m.Rules {
		b.WriteString("\n  ")
		b.WriteString(r.String())
	}
	return b.String()
}

// RuleTable maps property names to their modification rules. Properties
// without an entry are environment-transparent: they cross any
// environment unchanged.
type RuleTable map[string]ModRule

// Apply transforms one implemented property value across an environment.
func (t RuleTable) Apply(property string, in, env Value) (Value, error) {
	m, ok := t[property]
	if !ok {
		return in, nil
	}
	return m.Apply(in, env)
}

// ApplySet transforms a whole implemented property set across an
// environment property set, returning the effective set visible on the
// far side of the environment. This is the planner's view of "what the
// client component actually receives" (Section 3.3, condition 2).
func (t RuleTable) ApplySet(impl, env Set) (Set, error) {
	out := make(Set, len(impl))
	for name, in := range impl {
		v, err := t.Apply(name, in, env[name])
		if err != nil {
			return nil, err
		}
		out[name] = v
	}
	return out, nil
}

// ApplySetRO is ApplySet with copy-on-write semantics for read-heavy
// callers: when the environment leaves every property unchanged — the
// common case for trusted, secured paths — the input set itself is
// returned and no allocation happens. The result must therefore be
// treated as read-only whenever the input must stay intact.
func (t RuleTable) ApplySetRO(impl, env Set) (Set, error) {
	var out Set
	for name, in := range impl {
		v, err := t.Apply(name, in, env[name])
		if err != nil {
			return nil, err
		}
		if out == nil {
			if v.Equal(in) {
				continue
			}
			out = make(Set, len(impl))
			for n2, v2 := range impl {
				out[n2] = v2
			}
		}
		out[name] = v
	}
	if out == nil {
		return impl, nil
	}
	return out, nil
}

// ConfidentialityRule returns Figure 4's rule table for a Boolean
// confidentiality property: the output is T only when both the input
// and the environment are T.
func ConfidentialityRule(name string) ModRule {
	return ModRule{
		Property: name,
		Rules: []Rule{
			{In: Exactly(Bool(true)), Env: Exactly(Bool(true)), Out: OutLit(Bool(true))},
			{In: Exactly(Bool(false)), Env: Any, Out: OutLit(Bool(false))},
			{In: Any, Env: Exactly(Bool(false)), Out: OutLit(Bool(false))},
		},
	}
}

// CapRule returns a rule table that caps an ordered property at the
// environment's value (Out = min(In, Env)); used for TrustLevel-like
// properties.
func CapRule(name string) ModRule {
	d := OutMin
	return ModRule{Property: name, Default: &d}
}
