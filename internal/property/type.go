package property

import (
	"fmt"
	"sort"
	"strings"
)

// Type declares a property: its name, value kind, and allowable values.
// It corresponds to the <Property> element of the declarative service
// specification (Figure 2).
type Type struct {
	// Name identifies the property within a service specification.
	Name string
	// Kind is the value kind of the property.
	Kind Kind
	// Lo and Hi bound KindInt properties (inclusive). They are ignored
	// for other kinds.
	Lo, Hi int64
	// Enum, when non-empty, restricts KindString properties to the
	// listed values.
	Enum []string
}

// BoolType declares a Boolean property with values {T, F}.
func BoolType(name string) Type { return Type{Name: name, Kind: KindBool} }

// IntervalType declares an integer property with the inclusive value
// range [lo, hi], matching the paper's "Type: Interval, ValueRange" form.
func IntervalType(name string, lo, hi int64) Type {
	return Type{Name: name, Kind: KindInt, Lo: lo, Hi: hi}
}

// StringType declares an unconstrained string property.
func StringType(name string) Type { return Type{Name: name, Kind: KindString} }

// EnumType declares a string property restricted to the given values.
func EnumType(name string, values ...string) Type {
	return Type{Name: name, Kind: KindString, Enum: values}
}

// Check reports whether v is an allowable value for the declaration.
// A nil error means the value is allowed.
func (t Type) Check(v Value) error {
	if v.kind != t.Kind {
		return fmt.Errorf("property %s: value %v has kind %v, want %v", t.Name, v, v.kind, t.Kind)
	}
	switch t.Kind {
	case KindInt:
		if v.i < t.Lo || v.i > t.Hi {
			return fmt.Errorf("property %s: value %d outside range (%d,%d)", t.Name, v.i, t.Lo, t.Hi)
		}
	case KindString:
		if len(t.Enum) > 0 {
			for _, e := range t.Enum {
				if e == v.s {
					return nil
				}
			}
			return fmt.Errorf("property %s: value %q not in enumeration {%s}", t.Name, v.s, strings.Join(t.Enum, ","))
		}
	}
	return nil
}

// Values enumerates the allowable values of the declaration. For
// unbounded kinds (unconstrained strings) it returns nil; callers that
// need exhaustive enumeration (e.g. the DP planner's property
// fingerprinting) must treat nil as "unbounded".
func (t Type) Values() []Value {
	switch t.Kind {
	case KindBool:
		return []Value{Bool(false), Bool(true)}
	case KindInt:
		if t.Hi < t.Lo {
			return nil
		}
		vs := make([]Value, 0, t.Hi-t.Lo+1)
		for i := t.Lo; i <= t.Hi; i++ {
			vs = append(vs, Int(i))
		}
		return vs
	case KindString:
		if len(t.Enum) == 0 {
			return nil
		}
		vs := make([]Value, len(t.Enum))
		for i, e := range t.Enum {
			vs[i] = Str(e)
		}
		return vs
	}
	return nil
}

// String renders the declaration in a compact, stable form.
func (t Type) String() string {
	switch t.Kind {
	case KindBool:
		return fmt.Sprintf("%s: Boolean {T,F}", t.Name)
	case KindInt:
		return fmt.Sprintf("%s: Interval (%d,%d)", t.Name, t.Lo, t.Hi)
	case KindString:
		if len(t.Enum) > 0 {
			return fmt.Sprintf("%s: Enum {%s}", t.Name, strings.Join(t.Enum, ","))
		}
		return fmt.Sprintf("%s: String", t.Name)
	}
	return t.Name + ": <invalid>"
}

// Set is a property assignment: property name to value. It models the
// properties attached to an interface instance, a node, or a link
// environment. The nil map is a valid empty Set for reads.
type Set map[string]Value

// Clone returns an independent copy of the set.
func (s Set) Clone() Set {
	c := make(Set, len(s))
	for k, v := range s {
		c[k] = v
	}
	return c
}

// Merge returns a new Set containing s overlaid with o: values in o win.
func (s Set) Merge(o Set) Set {
	c := s.Clone()
	for k, v := range o {
		c[k] = v
	}
	return c
}

// Satisfies reports whether the set, viewed as implemented properties,
// satisfies every requirement in req under Value.Satisfies. Properties
// required but absent from s fail the check (there is nothing to offer);
// extra properties in s are permitted (superset semantics).
func (s Set) Satisfies(req Set) bool {
	for name, want := range req {
		have, ok := s[name]
		if !ok || !have.Satisfies(want) {
			return false
		}
	}
	return true
}

// Names returns the sorted property names present in the set.
func (s Set) Names() []string {
	names := make([]string, 0, len(s))
	for k := range s {
		names = append(names, k)
	}
	sort.Strings(names)
	return names
}

// Fingerprint returns a canonical textual form of the set, suitable as a
// map key (used by the DP planner to memoize property states).
func (s Set) Fingerprint() string {
	if len(s) == 0 {
		return ""
	}
	var b strings.Builder
	for i, name := range s.Names() {
		if i > 0 {
			b.WriteByte(';')
		}
		b.WriteString(name)
		b.WriteByte('=')
		b.WriteString(s[name].String())
	}
	return b.String()
}

// String renders the set as "name=value, ..." in sorted order.
func (s Set) String() string {
	parts := make([]string, 0, len(s))
	for _, name := range s.Names() {
		parts = append(parts, fmt.Sprintf("%s=%s", name, s[name]))
	}
	return strings.Join(parts, ", ")
}
