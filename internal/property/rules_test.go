package property

import (
	"strings"
	"testing"
	"testing/quick"
)

// TestConfidentialityRuleFig4 verifies the exact truth table of Figure 4.
func TestConfidentialityRuleFig4(t *testing.T) {
	rule := ConfidentialityRule("Confidentiality")
	cases := []struct {
		in, env, out bool
	}{
		{true, true, true},   // (In:T) x (Env:T) = T
		{false, true, false}, // (In:F) x (Env:ANY) = F
		{false, false, false},
		{true, false, false}, // (In:ANY) x (Env:F) = F
	}
	for _, c := range cases {
		got, err := rule.Apply(Bool(c.in), Bool(c.env))
		if err != nil {
			t.Fatalf("Apply(%v,%v): %v", c.in, c.env, err)
		}
		if !got.Equal(Bool(c.out)) {
			t.Errorf("Apply(In:%v, Env:%v) = %v, want %v", Bool(c.in), Bool(c.env), got, Bool(c.out))
		}
	}
}

func TestModRuleMissingEnvPassesThrough(t *testing.T) {
	rule := ConfidentialityRule("Confidentiality")
	got, err := rule.Apply(Bool(true), Value{})
	if err != nil || !got.Equal(Bool(true)) {
		t.Errorf("missing env must pass input through: %v, %v", got, err)
	}
}

func TestModRuleNoMatchErrors(t *testing.T) {
	rule := ModRule{Property: "X", Rules: []Rule{
		{In: Exactly(Int(1)), Env: Exactly(Int(1)), Out: OutIn},
	}}
	if _, err := rule.Apply(Int(2), Int(2)); err == nil {
		t.Error("unmatched rule table without default must error")
	}
}

func TestModRuleDefault(t *testing.T) {
	d := OutEnv
	rule := ModRule{Property: "X", Default: &d}
	got, err := rule.Apply(Int(9), Int(3))
	if err != nil || !got.Equal(Int(3)) {
		t.Errorf("default OutEnv: got %v, %v", got, err)
	}
}

func TestCapRule(t *testing.T) {
	rule := CapRule("TrustLevel")
	got, err := rule.Apply(Int(5), Int(2))
	if err != nil || !got.Equal(Int(2)) {
		t.Errorf("cap must take min: %v, %v", got, err)
	}
	got, err = rule.Apply(Int(2), Int(5))
	if err != nil || !got.Equal(Int(2)) {
		t.Errorf("cap must take min: %v, %v", got, err)
	}
}

func TestCapRuleKindMismatchErrors(t *testing.T) {
	rule := CapRule("TrustLevel")
	if _, err := rule.Apply(Int(5), Bool(true)); err == nil {
		t.Error("min across kinds must surface an error")
	}
}

func TestOutcomes(t *testing.T) {
	if got := OutLit(Int(7)).Apply(Int(1), Int(2)); !got.Equal(Int(7)) {
		t.Errorf("OutLit = %v", got)
	}
	if got := OutIn.Apply(Int(1), Int(2)); !got.Equal(Int(1)) {
		t.Errorf("OutIn = %v", got)
	}
	if got := OutEnv.Apply(Int(1), Int(2)); !got.Equal(Int(2)) {
		t.Errorf("OutEnv = %v", got)
	}
	if got := OutMax.Apply(Int(1), Int(2)); !got.Equal(Int(2)) {
		t.Errorf("OutMax = %v", got)
	}
}

func TestPatternMatching(t *testing.T) {
	if !Any.Matches(Int(3)) || !Any.Matches(Bool(false)) {
		t.Error("ANY must match everything")
	}
	p := Exactly(Int(3))
	if !p.Matches(Int(3)) || p.Matches(Int(4)) {
		t.Error("Exactly must match only its value")
	}
}

func TestRuleTableApplySet(t *testing.T) {
	table := RuleTable{
		"Confidentiality": ConfidentialityRule("Confidentiality"),
		"TrustLevel":      CapRule("TrustLevel"),
	}
	impl := Set{"Confidentiality": Bool(true), "TrustLevel": Int(5), "User": Str("Alice")}
	env := Set{"Confidentiality": Bool(false), "TrustLevel": Int(3)}
	out, err := table.ApplySet(impl, env)
	if err != nil {
		t.Fatal(err)
	}
	if !out["Confidentiality"].Equal(Bool(false)) {
		t.Error("confidentiality must be lost across an insecure environment")
	}
	if !out["TrustLevel"].Equal(Int(3)) {
		t.Error("trust must be capped by the environment")
	}
	if !out["User"].Equal(Str("Alice")) {
		t.Error("properties without rules are environment-transparent")
	}
}

func TestRuleTableApplySetSecureEnv(t *testing.T) {
	table := RuleTable{"Confidentiality": ConfidentialityRule("Confidentiality")}
	impl := Set{"Confidentiality": Bool(true)}
	env := Set{"Confidentiality": Bool(true)}
	out, err := table.ApplySet(impl, env)
	if err != nil {
		t.Fatal(err)
	}
	if !out["Confidentiality"].Equal(Bool(true)) {
		t.Error("confidentiality must survive a secure environment")
	}
}

func TestRuleTableApplySetError(t *testing.T) {
	table := RuleTable{"X": {Property: "X"}} // empty table, no default
	if _, err := table.ApplySet(Set{"X": Int(1)}, Set{"X": Int(2)}); err == nil {
		t.Error("rule failure must propagate from ApplySet")
	}
}

func TestRuleAndTableStrings(t *testing.T) {
	rule := ConfidentialityRule("Confidentiality")
	s := rule.String()
	for _, want := range []string{"PropertyModificationRule Confidentiality", "(In: T) x (Env: T) = (Out: T)", "(In: ANY) x (Env: F) = (Out: F)"} {
		if !strings.Contains(s, want) {
			t.Errorf("rule string missing %q:\n%s", want, s)
		}
	}
	for _, c := range []struct {
		o    Outcome
		want string
	}{{OutIn, "IN"}, {OutEnv, "ENV"}, {OutMin, "MIN"}, {OutMax, "MAX"}, {OutLit(Int(3)), "3"}} {
		if got := c.o.String(); got != c.want {
			t.Errorf("Outcome.String() = %q, want %q", got, c.want)
		}
	}
}

// TestQuickConfidentialityIsAnd: the Figure 4 table is Boolean AND.
func TestQuickConfidentialityIsAnd(t *testing.T) {
	rule := ConfidentialityRule("C")
	f := func(in, env bool) bool {
		got, err := rule.Apply(Bool(in), Bool(env))
		return err == nil && got.Equal(Bool(in && env))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// TestQuickCapRuleIdempotentAndCommutative: min-capping is idempotent
// and commutative, so repeated traversals of the same environment do not
// further degrade a property.
func TestQuickCapRuleIdempotentAndCommutative(t *testing.T) {
	rule := CapRule("TL")
	f := func(a, b int8) bool {
		x, y := Int(int64(a)), Int(int64(b))
		once, err1 := rule.Apply(x, y)
		twice, err2 := rule.Apply(once, y)
		swapped, err3 := rule.Apply(y, x)
		return err1 == nil && err2 == nil && err3 == nil &&
			once.Equal(twice) && once.Equal(swapped)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
