// Package property implements the typed property domain of the
// partitionable services framework (HPDC'02, Section 3.1).
//
// Properties are service-specific parameters that annotate interfaces and
// influence component linkage: the framework never interprets their
// semantics, only their value domain. The package provides typed values
// (Boolean, integer interval, string, enumeration), property sets,
// declaration types with allowable-value checking, expressions that can
// reference the deployment environment (e.g. Node.TrustLevel), and the
// property modification rules of Figure 4, which model how an environment
// transforms an implemented interface property (e.g. Confidentiality is
// lost across an insecure link).
package property

import (
	"fmt"
	"strconv"
)

// Kind enumerates the value kinds a property can take.
type Kind int

const (
	// KindInvalid is the zero Kind; it marks an absent or malformed value.
	KindInvalid Kind = iota
	// KindBool is a Boolean property (the paper's "T"/"F" values).
	KindBool
	// KindInt is an integer property, typically constrained to an interval.
	KindInt
	// KindString is a free-form string property (e.g. User = Alice).
	KindString
)

// String returns the lower-case name of the kind.
func (k Kind) String() string {
	switch k {
	case KindBool:
		return "bool"
	case KindInt:
		return "interval"
	case KindString:
		return "string"
	default:
		return "invalid"
	}
}

// Value is an immutable tagged union holding one property value.
// The zero Value is invalid and reports IsValid() == false.
type Value struct {
	kind Kind
	b    bool
	i    int64
	s    string
}

// Bool returns a Boolean property value.
func Bool(v bool) Value { return Value{kind: KindBool, b: v} }

// Int returns an integer property value.
func Int(v int64) Value { return Value{kind: KindInt, i: v} }

// Str returns a string property value.
func Str(v string) Value { return Value{kind: KindString, s: v} }

// IsValid reports whether v holds a value.
func (v Value) IsValid() bool { return v.kind != KindInvalid }

// Kind returns the kind of the value.
func (v Value) Kind() Kind { return v.kind }

// AsBool returns the Boolean payload; ok is false if v is not a Boolean.
func (v Value) AsBool() (b, ok bool) { return v.b, v.kind == KindBool }

// AsInt returns the integer payload; ok is false if v is not an integer.
func (v Value) AsInt() (i int64, ok bool) { return v.i, v.kind == KindInt }

// AsString returns the string payload; ok is false if v is not a string.
func (v Value) AsString() (s string, ok bool) { return v.s, v.kind == KindString }

// Equal reports whether two values have the same kind and payload.
func (v Value) Equal(o Value) bool { return v == o }

// String renders the value in the paper's notation: T/F for Booleans,
// decimal for integers, and the raw text for strings.
func (v Value) String() string {
	switch v.kind {
	case KindBool:
		if v.b {
			return "T"
		}
		return "F"
	case KindInt:
		return strconv.FormatInt(v.i, 10)
	case KindString:
		return v.s
	default:
		return "<invalid>"
	}
}

// Satisfies reports whether an implemented value satisfies a required
// value under the framework's "superset" compatibility relation
// (Section 3.3, condition 2):
//
//   - Boolean: an implementation providing T satisfies both T and F
//     requirements; an implementation providing F satisfies only F.
//     (Order F < T: impl >= req.)
//   - Integer: impl >= req. This captures, for example, a TrustLevel-5
//     MailServer satisfying a client that requires TrustLevel 4.
//   - String: exact match.
//
// Values of different kinds never satisfy each other, and an invalid
// value satisfies nothing (and nothing satisfies a requirement for an
// invalid value).
func (v Value) Satisfies(req Value) bool {
	if v.kind != req.kind || v.kind == KindInvalid {
		return false
	}
	switch v.kind {
	case KindBool:
		return v.b || !req.b
	case KindInt:
		return v.i >= req.i
	case KindString:
		return v.s == req.s
	}
	return false
}

// Parse converts the paper's textual notation into a Value: "T"/"F"
// become Booleans, decimal integers become KindInt, anything else is a
// string. Parse never fails; use Type.Check to validate against a
// declaration.
func Parse(text string) Value {
	switch text {
	case "T":
		return Bool(true)
	case "F":
		return Bool(false)
	}
	if i, err := strconv.ParseInt(text, 10, 64); err == nil {
		return Int(i)
	}
	return Str(text)
}

// MustKind panics unless v has the given kind. It is a programming-error
// guard for internal call sites that have already validated kinds.
func (v Value) MustKind(k Kind) Value {
	if v.kind != k {
		panic(fmt.Sprintf("property: value %v has kind %v, want %v", v, v.kind, k))
	}
	return v
}

// Min returns the smaller of two values of the same orderable kind
// (Bool with F < T, or Int). It returns an invalid Value if the kinds
// differ or are not orderable.
func Min(a, b Value) Value {
	if a.kind != b.kind {
		return Value{}
	}
	switch a.kind {
	case KindBool:
		return Bool(a.b && b.b)
	case KindInt:
		if a.i <= b.i {
			return a
		}
		return b
	}
	return Value{}
}

// Max returns the larger of two values of the same orderable kind.
// It returns an invalid Value if the kinds differ or are not orderable.
func Max(a, b Value) Value {
	if a.kind != b.kind {
		return Value{}
	}
	switch a.kind {
	case KindBool:
		return Bool(a.b || b.b)
	case KindInt:
		if a.i >= b.i {
			return a
		}
		return b
	}
	return Value{}
}
