package fleet

// governor is the fleet's global cutover brake. Per-session controllers
// each cut over as soon as their replan says so; five thousand of them
// reacting to one backbone event would re-deploy the world in a single
// instant — a self-inflicted thundering herd — and a session sitting
// near a latency tie would rewire on every minor oscillation. The
// governor applies two policies at commit time:
//
//   - a token bucket paces cutovers fleet-wide: each commit spends one
//     token, and when the bucket is dry the commit is deferred to the
//     virtual instant its token accrues (reservations queue, so a wave's
//     commits spread out at the configured rate instead of stampeding);
//   - per-session hysteresis suppresses optimization-only rewires that
//     arrive inside the configured window after the session's previous
//     cutover. Forced cutovers — the session's deployment is broken, a
//     node died under it — bypass hysteresis (but still pay a token:
//     mass failure is exactly when pacing matters most).
//
// The governor runs on virtual time and is only touched from the
// manager's sequential commit phase, so it needs no locking and its
// decisions are deterministic.
type governor struct {
	ratePerSec   float64 // tokens per second; <= 0 disables pacing
	burst        float64
	hysteresisMS float64

	tokens float64
	lastMS float64
}

func newGovernor(ratePerSec float64, burst int, hysteresisMS float64) *governor {
	if burst <= 0 {
		burst = 1
	}
	return &governor{
		ratePerSec:   ratePerSec,
		burst:        float64(burst),
		hysteresisMS: hysteresisMS,
		tokens:       float64(burst),
	}
}

// suppressed reports whether an optimization-only rewire at nowMS falls
// inside the session's anti-flap window.
func (g *governor) suppressed(nowMS, lastCutoverMS float64, forced bool) bool {
	if forced || g.hysteresisMS <= 0 {
		return false
	}
	return nowMS-lastCutoverMS < g.hysteresisMS
}

// reserveAt spends one token and returns the earliest virtual time the
// cutover may commit: nowMS when a token is available, otherwise the
// future instant the bucket refills to one. Successive calls queue
// their reservations.
func (g *governor) reserveAt(nowMS float64) float64 {
	if g.ratePerSec <= 0 {
		return nowMS
	}
	if nowMS > g.lastMS {
		g.tokens += (nowMS - g.lastMS) / 1000 * g.ratePerSec
		if g.tokens > g.burst {
			g.tokens = g.burst
		}
		g.lastMS = nowMS
	}
	if g.tokens >= 1 {
		g.tokens--
		return nowMS
	}
	// Reserve the next token as it accrues: advance the refill horizon
	// to the instant the deficit closes and consume the token there.
	waitMS := (1 - g.tokens) / g.ratePerSec * 1000
	g.tokens = 0
	g.lastMS += waitMS
	return g.lastMS
}
