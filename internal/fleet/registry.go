package fleet

import (
	"sort"
	"sync"

	"partsvc/internal/metrics"
	"partsvc/internal/planner"
)

// registry is the fleet's shared view of deployed component instances,
// refcounted by placement key. Sessions routinely land on the same
// instances — that is the paper's reuse model, and at fleet scale it is
// the norm, not the exception — so instance lifecycle must be
// ownership-counted: the first session to reference a placement deploys
// it, the last one to leave tears it down, and everything in between is
// free. The registry also feeds every shard planner's reuse set, which
// is why its enumeration is sorted: identical content in identical
// order on every shard is what makes cross-shard fingerprints (and
// therefore the shared wave memo) line up.
type registry struct {
	mu      sync.Mutex
	entries map[string]*regEntry

	deploys, discards *metrics.Counter
}

type regEntry struct {
	place  planner.Placement
	refs   int
	pinned bool // service-owner infrastructure (primaries): never torn down
	dead   bool // evicted by revalidation: hidden from reuse, discarded on drain
}

func newRegistry() *registry {
	reg := metrics.DefaultRegistry
	return &registry{
		entries:  map[string]*regEntry{},
		deploys:  reg.Counter("fleet.deploys"),
		discards: reg.Counter("fleet.discards"),
	}
}

// pin registers standing infrastructure that predates (and outlives)
// every session.
func (r *registry) pin(p planner.Placement) {
	r.mu.Lock()
	defer r.mu.Unlock()
	key := p.Key()
	e := r.entries[key]
	if e == nil {
		e = &regEntry{place: p}
		r.entries[key] = e
		r.deploys.Inc()
	}
	e.pinned = true
}

// acquire adds one session reference to the placement, deploying it on
// the 0→1 transition. Returns true when this call deployed it.
func (r *registry) acquire(p planner.Placement) bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	key := p.Key()
	e := r.entries[key]
	if e == nil {
		e = &regEntry{place: p}
		r.entries[key] = e
		e.refs++
		r.deploys.Inc()
		return true
	}
	e.refs++
	return false
}

// release drops one session reference, discarding the instance on the
// 1→0 transition (pinned entries stay). Returns true when this call
// discarded it.
func (r *registry) release(key string) bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	e := r.entries[key]
	if e == nil {
		return false
	}
	e.refs--
	if e.refs > 0 || e.pinned {
		return false
	}
	delete(r.entries, key)
	r.discards.Inc()
	return true
}

// evict marks a placement dead: revalidation decided the instance can
// no longer run where it is. Dead entries stop being offered for reuse
// immediately; their remaining references drain as the affected
// sessions rewire, and the last release discards them.
func (r *registry) evict(key string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if e := r.entries[key]; e != nil {
		e.dead = true
		e.pinned = false
	}
}

// placements enumerates the live instances sorted by key — the reuse
// set every shard planner is synced from at wave start.
func (r *registry) placements() []planner.Placement {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]planner.Placement, 0, len(r.entries))
	for _, e := range r.entries {
		if !e.dead {
			out = append(out, e.place)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Key() < out[j].Key() })
	return out
}

// size returns the number of live instances.
func (r *registry) size() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	n := 0
	for _, e := range r.entries {
		if !e.dead {
			n++
		}
	}
	return n
}
