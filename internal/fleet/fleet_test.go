package fleet

import (
	"fmt"
	"sort"
	"strings"
	"testing"

	"partsvc/internal/adapt"
	"partsvc/internal/netmodel"
	"partsvc/internal/netmon"
	"partsvc/internal/planner"
	"partsvc/internal/sim"
	"partsvc/internal/spec"
	"partsvc/internal/topology"
)

// world is one self-contained fleet universe on the case-study
// topology: virtual clock, shared network, manager with the primary
// pinned in New York.
type world struct {
	env *sim.Env
	net *netmodel.Network
	mon *netmon.Monitor
	mgr *Manager
}

func newWorld(t *testing.T, cfg Config, sessions int) *world {
	t.Helper()
	w := &world{env: sim.NewEnv(), net: topology.CaseStudy()}
	w.mon = netmon.New(w.net)
	w.mgr = New(cfg, spec.MailService(), w.net, w.mon, adapt.NewSimScheduler(w.env))
	if _, err := w.mgr.AddPrimary(spec.CompMailServer, topology.NYServer); err != nil {
		t.Fatal(err)
	}
	// Sessions alternate over two request shapes: Alice from San Diego
	// and Carol from Seattle — the fleet-scale analogue of the
	// case-study's warm chain plus remote client.
	shapes := []planner.Request{
		{Interface: spec.IfaceClient, ClientNode: topology.SDClient, User: "Alice", RateRPS: 50},
		{Interface: spec.IfaceClient, ClientNode: topology.SeaClient, User: "Carol", RateRPS: 50},
	}
	for i := 0; i < sessions; i++ {
		w.mgr.AddSession(fmt.Sprintf("s%03d", i), shapes[i%len(shapes)])
	}
	return w
}

// transcript renders the fleet's full observable history: per-session
// event streams and final deployments, in global session order. Two
// runs are equivalent iff their transcripts are byte-identical.
func (w *world) transcript() string {
	var b strings.Builder
	for _, s := range w.mgr.Sessions() {
		fmt.Fprintf(&b, "%s dep=%s\n", s.Name, depSummary(s.Deployment()))
		for _, e := range s.Events() {
			fmt.Fprintf(&b, "  %s\n", e)
		}
	}
	return b.String()
}

// TestBootstrapSharesComputationsAndInstances: N sessions over two
// request shapes must bootstrap with exactly two plan computations
// (everyone else hits the wave memo) and share instances through the
// refcounted registry rather than deploying per session.
func TestBootstrapSharesComputationsAndInstances(t *testing.T) {
	const n = 12
	w := newWorld(t, Config{Shards: 4, Workers: 2}, n)
	rep := w.mgr.Bootstrap()

	if rep.Sessions != n {
		t.Fatalf("bootstrap covered %d sessions, want %d", rep.Sessions, n)
	}
	if rep.PlanComputes != 2 {
		t.Fatalf("bootstrap ran %d plan computations, want 2 (one per request shape)", rep.PlanComputes)
	}
	if rep.MemoHits != n-2 {
		t.Fatalf("memo hits = %d, want %d", rep.MemoHits, n-2)
	}
	// Per-shape batching: a shard issues one memo lookup per distinct
	// session shape, not one per session (the old per-session loop paid
	// n lookups here). With 2 shapes over 4 shards that is at most 8.
	if rep.MemoLookups >= rep.Sessions {
		t.Fatalf("memo lookups = %d for %d sessions — per-shape batching is not active", rep.MemoLookups, rep.Sessions)
	}
	if rep.MemoLookups < rep.PlanComputes || rep.MemoLookups > 2*4 {
		t.Fatalf("memo lookups = %d, want between %d and 8 (shapes x shards)", rep.MemoLookups, rep.PlanComputes)
	}
	if rep.Failed != 0 {
		t.Fatalf("%d sessions failed to bootstrap", rep.Failed)
	}
	for _, s := range w.mgr.Sessions() {
		if s.Deployment() == nil {
			t.Fatalf("session %s has no deployment after bootstrap", s.Name)
		}
	}
	// Same-shape sessions share every instance: the registry holds the
	// union of two chains (plus the pinned primary), nowhere near one
	// chain per session.
	if got := w.mgr.Instances(); got >= n {
		t.Fatalf("registry holds %d instances for %d sessions — sharing is broken", got, n)
	}
}

// TestLinkEventCoalescesIntoOneWave: a burst of reports against one
// link must debounce into a single wave covering the sessions whose
// deployments traverse it, replanned with one computation per distinct
// session shape.
func TestLinkEventCoalescesIntoOneWave(t *testing.T) {
	w := newWorld(t, Config{Shards: 4, Workers: 2, DebounceMS: 20}, 8)
	w.mgr.Bootstrap()
	var reports []WaveReport
	w.mgr.OnWave(func(r WaveReport) { reports = append(reports, r) })
	w.mgr.Start()

	w.env.At(100, func() {
		if err := w.mon.ReportLink(topology.SDGateway, topology.SeaGW, 1500, 1, nil); err != nil {
			t.Error(err)
		}
	})
	w.env.At(110, func() { // same burst: lands in the same debounce window
		if err := w.mon.ReportLink(topology.SDGateway, topology.SeaGW, 1600, 1, nil); err != nil {
			t.Error(err)
		}
	})
	w.env.RunUntil(5000)

	if len(reports) != 1 {
		t.Fatalf("got %d waves, want 1 (burst must coalesce)", len(reports))
	}
	r := reports[0]
	if r.Sessions == 0 {
		t.Fatal("wave covered no sessions; the degraded link is on deployed paths")
	}
	if r.PlanComputes > 2 {
		t.Fatalf("wave ran %d computations for %d sessions, want <= 2 (one per shape)", r.PlanComputes, r.Sessions)
	}
	if r.Cutovers+r.Unchanged+r.Suppressed+r.Deferred+r.Failed != r.Sessions {
		t.Fatalf("wave accounting does not add up: %+v", r)
	}
}

// TestOutputInvariantUnderWorkersAndShards: the same scenario must
// produce byte-identical transcripts regardless of worker or shard
// count — workers are pure execution parallelism, and shards only
// partition state.
func TestOutputInvariantUnderWorkersAndShards(t *testing.T) {
	run := func(shards, workers int) string {
		w := newWorld(t, Config{Shards: shards, Workers: workers, DebounceMS: 20}, 10)
		w.mgr.Bootstrap()
		w.mgr.Start()
		w.env.At(100, func() {
			_ = w.mon.ReportLink(topology.SDGateway, topology.SeaGW, 1500, 1, nil)
		})
		w.env.At(700, func() {
			_ = w.mon.ReportNodeDown(topology.SDClient)
		})
		w.env.RunUntil(5000)
		return w.transcript()
	}
	base := run(4, 1)
	if base == "" {
		t.Fatal("empty transcript")
	}
	for _, tc := range []struct{ shards, workers int }{{4, 8}, {1, 1}, {8, 4}} {
		if got := run(tc.shards, tc.workers); got != base {
			t.Fatalf("transcript diverged at shards=%d workers=%d:\n--- base ---\n%s--- got ---\n%s",
				tc.shards, tc.workers, base, got)
		}
	}
}

// TestGovernorPacesAndSuppresses drives the San Diego relay node
// through a down/up/down/up cycle. Its recovery is an optimization
// opportunity for the Seattle sessions (a warm trust-4 chain becomes
// reachable), so the first recovery triggers a wave of rewires that the
// 1/s token bucket paces out one commit per second. The second outage
// partitions those sessions from their new placements — a broken
// deployment is a forced cutover, so hysteresis must NOT stop the
// repair. The second recovery then invites the same optimization rewire
// again, inside the hysteresis window: that is a flap, and the governor
// must suppress it entirely.
func TestGovernorPacesAndSuppresses(t *testing.T) {
	w := newWorld(t, Config{
		Shards: 4, Workers: 2, DebounceMS: 20,
		CutoverRatePerSec: 1, CutoverBurst: 1, HysteresisMS: 60000,
	}, 8)
	w.mgr.Bootstrap()
	var reports []WaveReport
	w.mgr.OnWave(func(r WaveReport) { reports = append(reports, r) })
	w.mgr.Start()

	w.env.At(100, func() { _ = w.mon.ReportNodeDown(topology.SDGateway) })
	w.env.At(20000, func() { _ = w.mon.ReportNodeUp(topology.SDGateway) })
	w.env.At(30000, func() { _ = w.mon.ReportNodeDown(topology.SDGateway) })
	w.env.At(40000, func() { _ = w.mon.ReportNodeUp(topology.SDGateway) })
	w.env.RunUntil(120000)

	if len(reports) != 4 {
		t.Fatalf("got %d waves, want 4", len(reports))
	}
	recovery, outage, flap := reports[1], reports[2], reports[3]

	// Wave 2 (first recovery): optimization rewires, paced at 1/s.
	rewires := recovery.Cutovers + recovery.Deferred
	if rewires < 2 {
		t.Fatalf("recovery wave rewired %d sessions, want >= 2: %+v", rewires, recovery)
	}
	if recovery.Deferred == 0 {
		t.Fatalf("1/s budget with burst 1 must defer some of %d rewires: %+v", rewires, recovery)
	}
	if recovery.Suppressed != 0 {
		t.Fatalf("no session has cut over yet; nothing to suppress: %+v", recovery)
	}
	if recovery.SpanMS == 0 {
		t.Fatal("deferred commits must stretch the wave span")
	}
	// Deferred commits land at token cadence: no two cutovers share an
	// instant, and successive commits are a full token period apart.
	var commits []float64
	for _, s := range w.mgr.Sessions() {
		for _, e := range s.Events() {
			if e.Kind == "adapted" && e.Wave == recovery.Wave {
				commits = append(commits, e.AtMS)
			}
		}
	}
	if len(commits) != rewires {
		t.Fatalf("found %d adapted events, want %d", len(commits), rewires)
	}
	sort.Float64s(commits)
	for i := 1; i < len(commits); i++ {
		if gap := commits[i] - commits[i-1]; gap < 1000 {
			t.Fatalf("cutovers %.1fms apart despite 1/s budget: %v", gap, commits)
		}
	}

	// Wave 3 (second outage): sessions are partitioned from placements
	// behind the dead relay — forced repairs punch through hysteresis
	// (at minimum the sessions that just rewired onto San Diego), still
	// paced by the bucket.
	if repaired := outage.Cutovers + outage.Deferred; repaired < rewires {
		t.Fatalf("outage wave repaired %d of %d broken sessions: %+v", repaired, rewires, outage)
	}
	if outage.Suppressed != 0 {
		t.Fatalf("hysteresis suppressed a forced repair: %+v", outage)
	}

	// Wave 4 (second recovery): the same optimization rewire inside the
	// hysteresis window is a flap — suppressed outright.
	if flap.Suppressed < rewires {
		t.Fatalf("flap wave suppressed %d rewires, want >= %d: %+v", flap.Suppressed, rewires, flap)
	}
	if flap.Cutovers+flap.Deferred != 0 {
		t.Fatalf("flap wave committed %d cutovers inside the anti-flap window: %+v",
			flap.Cutovers+flap.Deferred, flap)
	}
}

// TestNodeKillForcesThroughHysteresis: a node death under a session's
// deployment is a forced cutover — hysteresis must not suppress it.
func TestNodeKillForcesThroughHysteresis(t *testing.T) {
	w := newWorld(t, Config{Shards: 2, Workers: 2, DebounceMS: 20, HysteresisMS: 1e9}, 4)
	w.mgr.Bootstrap()
	w.mgr.Start()

	// Find a non-client, non-primary node actually hosting session
	// placements, and kill it.
	var victim netmodel.NodeID
	for _, s := range w.mgr.Sessions() {
		for _, p := range s.Deployment().Placements {
			if p.Node != topology.NYServer && p.Node != s.Req.ClientNode {
				victim = p.Node
			}
		}
	}
	if victim == "" {
		t.Skip("no interior placement to kill in this plan shape")
	}
	w.env.At(100, func() { _ = w.mon.ReportNodeDown(victim) })
	w.env.RunUntil(5000)

	for _, s := range w.mgr.Sessions() {
		for _, p := range s.Deployment().Placements {
			if p.Node == victim {
				t.Fatalf("session %s still deployed on dead node %s", s.Name, victim)
			}
		}
	}
}
