package fleet

import (
	"fmt"
	"strings"
	"testing"

	"partsvc/internal/adapt"
	"partsvc/internal/netmodel"
	"partsvc/internal/netmon"
	"partsvc/internal/planner"
	"partsvc/internal/property"
	"partsvc/internal/sim"
	"partsvc/internal/spec"
)

// twoClusterNet builds two fully disjoint copies of the case-study
// topology, node IDs prefixed "a-" and "b-". No link crosses clusters:
// whatever happens in one is physically invisible to the other, which
// makes it the ground truth for cross-session isolation.
func twoClusterNet(t *testing.T) *netmodel.Network {
	t.Helper()
	n := netmodel.New()
	for _, prefix := range []string{"a-", "b-"} {
		add := func(id string, trust int64) {
			err := n.AddNode(netmodel.Node{
				ID:             netmodel.NodeID(prefix + id),
				Site:           prefix + "site",
				CPUCapacityRPS: 2000,
				Props:          property.Set{"TrustLevel": property.Int(trust)},
			})
			if err != nil {
				t.Fatal(err)
			}
		}
		link := func(a, b string, latencyMS, mbps float64, secure bool) {
			err := n.AddLink(netmodel.Link{
				A: netmodel.NodeID(prefix + a), B: netmodel.NodeID(prefix + b),
				LatencyMS: latencyMS, BandwidthMbps: mbps, Secure: secure,
				Props: property.Set{"Confidentiality": property.Bool(secure)},
			})
			if err != nil {
				t.Fatal(err)
			}
		}
		add("ny-1", 5)
		add("sd-1", 4)
		add("sd-2", 4)
		add("sea-2", 2)
		link("sd-1", "sd-2", 0, 100, true)
		link("ny-1", "sd-1", 200, 20, false)
		link("sd-1", "sea-2", 100, 50, false)
		link("ny-1", "sea-2", 400, 8, false)
	}
	return n
}

// isoWorld is one fleet spanning both clusters: a primary pinned in
// each cluster's New York, sessions interleaved across clusters so that
// shards mix them.
func isoWorld(t *testing.T) *world {
	t.Helper()
	w := &world{env: sim.NewEnv(), net: twoClusterNet(t)}
	w.mon = netmon.New(w.net)
	w.mgr = New(Config{
		Shards: 4, Workers: 4, DebounceMS: 20,
		CutoverRatePerSec: 1, CutoverBurst: 1, HysteresisMS: 60000,
	}, spec.MailService(), w.net, w.mon, adapt.NewSimScheduler(w.env))
	for _, prefix := range []string{"a-", "b-"} {
		if _, err := w.mgr.AddPrimary(spec.CompMailServer, netmodel.NodeID(prefix+"ny-1")); err != nil {
			t.Fatal(err)
		}
	}
	// One Alice and two Carols per cluster: two Seattle sessions make
	// the recovery wave defer a cutover, which the mid-cutover kill then
	// strands.
	for i := 0; i < 3; i++ {
		for _, prefix := range []string{"a-", "b-"} {
			req := planner.Request{Interface: spec.IfaceClient, RateRPS: 50}
			if i == 0 {
				req.ClientNode = netmodel.NodeID(prefix + "sd-2")
				req.User = "Alice"
			} else {
				req.ClientNode = netmodel.NodeID(prefix + "sea-2")
				req.User = "Carol"
			}
			w.mgr.AddSession(fmt.Sprintf("%s%02d", prefix, i), req)
		}
	}
	if rep := w.mgr.Bootstrap(); rep.Failed != 0 {
		t.Fatalf("bootstrap failed %d sessions: %+v", rep.Failed, rep)
	}
	w.mgr.Start()
	return w
}

// clusterTranscript renders one cluster's sessions — deployments plus
// event streams with the global wave sequence number masked out, since
// wave numbering is fleet-wide bookkeeping, not observable behavior.
// Everything else (virtual timing, event kinds, deployment details) is
// compared byte-for-byte.
func clusterTranscript(w *world, prefix string) string {
	var b strings.Builder
	for _, s := range w.mgr.Sessions() {
		if !strings.HasPrefix(s.Name, prefix) {
			continue
		}
		fmt.Fprintf(&b, "%s dep=%s\n", s.Name, depSummary(s.Deployment()))
		for _, e := range s.Events() {
			fmt.Fprintf(&b, "  [%10.1f] %s %s\n", e.AtMS, e.Kind, e.Detail)
		}
	}
	return b.String()
}

// TestCrossSessionIsolation is the interference torture test: cluster A
// is put through an outage / recovery / mid-cutover-kill sequence —
// including killing a node while deferred cutovers onto it are still
// queued — while cluster B runs its own quiet scenario. B's sessions
// must come out byte-identical (same deployments, same events, same
// virtual timing) to a control run where cluster A never misbehaved,
// and no replan wave may span both clusters. Run under -race, this also
// shakes out data races between concurrent shard workers.
func TestCrossSessionIsolation(t *testing.T) {
	run := func(torture bool) (*world, string) {
		w := isoWorld(t)
		if torture {
			// Cluster A's bad day: a link improvement triggers a wave of
			// paced optimization rewires onto a-sd-2 (the registry is warm
			// with Alice's San Diego chain), then the relay dies while one
			// of those cutovers is still deferred — a node-kill
			// mid-cutover, stranding a queued commit onto a now-partitioned
			// placement.
			w.env.At(100, func() { _ = w.mon.ReportLink("a-sd-1", "a-sd-2", 0, 200, nil) })
			w.env.At(600, func() { _ = w.mon.ReportNodeDown("a-sd-1") })
		}
		// Cluster B's identical-in-both-runs scenario, far enough out
		// that the shared token bucket has refilled either way.
		w.env.At(50000, func() { _ = w.mon.ReportLink("b-sd-1", "b-sd-2", 0, 200, nil) })
		w.env.RunUntil(60000)
		return w, clusterTranscript(w, "b-")
	}

	_, control := run(false)
	w, tortured := run(true)

	if control == "" {
		t.Fatal("empty control transcript")
	}
	if tortured != control {
		t.Fatalf("cluster A's failures leaked into cluster B:\n--- control ---\n%s--- tortured ---\n%s",
			control, tortured)
	}

	// The kill/recovery sequence must have done real work in cluster A —
	// otherwise the torture proved nothing.
	aAdapted := 0
	waveCluster := map[uint64]map[string]bool{}
	for _, s := range w.mgr.Sessions() {
		prefix := s.Name[:2]
		for _, e := range s.Events() {
			if prefix == "a-" && e.Kind == "adapted" {
				aAdapted++
			}
			if waveCluster[e.Wave] == nil {
				waveCluster[e.Wave] = map[string]bool{}
			}
			waveCluster[e.Wave][prefix] = true
		}
	}
	if aAdapted == 0 {
		t.Fatal("cluster A never rewired; the torture scenario is inert")
	}
	// Disjoint event streams: post-bootstrap waves never span clusters.
	for wave, clusters := range waveCluster {
		if wave > 1 && len(clusters) > 1 {
			t.Fatalf("wave %d spans both clusters", wave)
		}
	}
}
