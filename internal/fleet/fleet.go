// Package fleet is the session-sharded control plane: one manager
// multiplexing thousands of planner/controller sessions over a single
// shared network model and route cache. The per-session Controller in
// internal/adapt scales the paper's adaptation loop to a handful of
// deployments; it does not scale to a fleet, because every session
// would redundantly re-derive the same facts — the same Dijkstra
// trees, the same replan for the same request shape, the same
// heartbeat stream — and then all cut over at once. The manager
// removes each redundancy structurally:
//
//   - sessions are consistent-hashed onto power-of-two shards; each
//     shard owns one planner instance and its sessions' replan state,
//     so shard workers never contend on planning structures;
//   - one netmon subscription feeds the whole fleet. A topology event
//     debounces into a single replan wave covering exactly the sessions
//     whose deployments touch the changed elements (an index maintained
//     at commit time), pinned to one route-cache epoch — the
//     copy-on-write delta snapshot netmodel mints for link events — so
//     5k sessions replan off one Dijkstra pass;
//   - a shared wave memo dedupes the replans themselves: sessions with
//     identical request fingerprints, reuse sets, and deployment shapes
//     plan once and share the diff;
//   - a global cutover governor paces commits (token bucket) and
//     suppresses per-session flapping (hysteresis);
//   - instances live in a refcounted registry — deployed on first use,
//     torn down on last release — and node heartbeats go through the
//     shared adapt.ProbePool, one stream per endpoint for the whole
//     fleet.
//
// Determinism is load-bearing: with a fixed shard count, the wave
// replan phase writes results into per-session slots and the commit
// phase applies them in global session order, so fleet output is
// byte-identical no matter how many workers drive the wave.
package fleet

import (
	"fmt"
	"hash/fnv"
	"math"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"

	"partsvc/internal/adapt"
	"partsvc/internal/metrics"
	"partsvc/internal/netmodel"
	"partsvc/internal/netmon"
	"partsvc/internal/planner"
	"partsvc/internal/spec"
)

// Config tunes the manager. Shards is state partitioning and changes
// which planner handles which session — it is part of the fleet's
// deterministic identity and defaults to the next power of two ≥
// GOMAXPROCS. Workers is execution parallelism only; any value
// produces identical output.
type Config struct {
	// Shards is the number of session shards; rounded up to a power of
	// two. 0 means the next power of two ≥ GOMAXPROCS.
	Shards int
	// Workers bounds the goroutines driving a wave's replan phase.
	// 0 means GOMAXPROCS. Output-invariant.
	Workers int
	// DebounceMS batches change bursts into one wave (default 50).
	DebounceMS float64
	// HysteresisMS is the per-session anti-flap window: an
	// optimization-only rewire within this many ms of the session's
	// last cutover is suppressed. 0 disables.
	HysteresisMS float64
	// CutoverRatePerSec paces committed cutovers fleet-wide; <= 0
	// disables pacing.
	CutoverRatePerSec float64
	// CutoverBurst is the token-bucket depth (default 32).
	CutoverBurst int
	// Tune, when set, is applied to each shard planner after
	// construction (chain length bounds, loopback env, ...).
	Tune func(*planner.Planner)
}

func (c Config) withDefaults() Config {
	if c.Shards <= 0 {
		c.Shards = runtime.GOMAXPROCS(0)
	}
	c.Shards = nextPow2(c.Shards)
	if c.Workers <= 0 {
		c.Workers = runtime.GOMAXPROCS(0)
	}
	if c.DebounceMS <= 0 {
		c.DebounceMS = 50
	}
	if c.CutoverBurst <= 0 {
		c.CutoverBurst = 32
	}
	return c
}

func nextPow2(n int) int {
	p := 1
	for p < n {
		p <<= 1
	}
	return p
}

// Event is one step of a session's private control stream. Kind is one
// of "planned" (bootstrap deployment committed), "wave" (session
// included in a replan wave), "unchanged", "suppressed" (anti-flap),
// "deferred" (rate-limited; Detail has the commit time), "adapted",
// or "failed".
type Event struct {
	AtMS   float64
	Wave   uint64
	Kind   string
	Detail string
}

// String renders the event for logs.
func (e Event) String() string {
	s := fmt.Sprintf("[%10.1fms] w%03d %-10s", e.AtMS, e.Wave, e.Kind)
	if e.Detail != "" {
		s += " " + e.Detail
	}
	return s
}

// Session is one tracked client deployment. All mutation happens
// through the manager; accessors are safe from any goroutine.
type Session struct {
	Name string
	Req  planner.Request

	idx   int // global order (registration order)
	shard int

	mu            sync.Mutex
	dep           *planner.Deployment
	events        []Event
	lastCutoverMS float64
	pendingCancel func() bool
}

// Deployment returns the session's current deployment (nil before
// bootstrap).
func (s *Session) Deployment() *planner.Deployment {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.dep
}

// Events returns a copy of the session's event stream.
func (s *Session) Events() []Event {
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]Event(nil), s.events...)
}

// Shard returns the shard the session hashed onto.
func (s *Session) Shard() int { return s.shard }

func (s *Session) emit(e Event) {
	s.mu.Lock()
	s.events = append(s.events, e)
	s.mu.Unlock()
}

func (s *Session) snapshotDep() *planner.Deployment {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.dep
}

// cancelPending withdraws a deferred commit: a newer wave's verdict for
// the session supersedes any rate-limited diff still waiting to land.
func (s *Session) cancelPending() {
	s.mu.Lock()
	cancel := s.pendingCancel
	s.pendingCancel = nil
	s.mu.Unlock()
	if cancel != nil {
		cancel()
	}
}

type shard struct {
	pl       *planner.Planner
	sessions []*Session
}

// Manager multiplexes sessions over one shared network model.
type Manager struct {
	cfg    Config
	net    *netmodel.Network
	mon    *netmon.Monitor
	sched  adapt.Scheduler
	svc    *spec.Service
	shards []*shard
	gov    *governor
	reg    *registry

	pool     *adapt.ProbePool
	poolAddr func(netmodel.NodeID) string

	waves               *metrics.Counter
	waveSessions        *metrics.Histogram
	waveSpanMS          *metrics.Histogram
	replansTotal        *metrics.Counter
	planComputes        *metrics.Counter
	memoHits            *metrics.Counter
	memoLookups         *metrics.Counter
	routeLookups        *metrics.Counter
	cutovers            *metrics.Counter
	cutoversRateLimited *metrics.Counter
	flapsSuppressed     *metrics.Counter
	evictions           *metrics.Counter

	mu             sync.Mutex
	sessions       []*Session // global order
	byNode         map[netmodel.NodeID]map[int]struct{}
	started        bool
	stopped        bool
	debounceCancel func() bool
	pendingAll     bool
	pendingIdx     map[int]struct{}
	pendingCh      *planner.ChangedSet // changed elements since the last wave
	waveSeq        uint64
	onWave         func(WaveReport)
	onEvent        func(session string, e Event)
}

// WaveReport summarizes one completed replan wave (emitted after its
// commit phase; deferred commits may still be scheduled).
type WaveReport struct {
	Wave         uint64
	StartMS      float64
	Sessions     int
	PlanComputes int
	MemoHits     int
	// MemoLookups is the number of wave-memo lookups the wave issued:
	// with per-shape batching this is the distinct shapes per shard, not
	// one lookup per session.
	MemoLookups  int
	RouteLookups int
	Cutovers     int
	Deferred     int
	Suppressed   int
	Unchanged    int
	Failed       int
	SpanMS       float64
	Epoch        uint64
}

// New builds a manager over a shared network, its monitor, and a
// scheduler (virtual or wall-clock).
func New(cfg Config, svc *spec.Service, net *netmodel.Network, mon *netmon.Monitor, sched adapt.Scheduler) *Manager {
	cfg = cfg.withDefaults()
	reg := metrics.DefaultRegistry
	m := &Manager{
		cfg:   cfg,
		net:   net,
		mon:   mon,
		sched: sched,
		svc:   svc,
		gov:   newGovernor(cfg.CutoverRatePerSec, cfg.CutoverBurst, cfg.HysteresisMS),
		reg:   newRegistry(),

		waves:               reg.Counter("fleet.waves"),
		waveSessions:        reg.Histogram("fleet.wave_sessions"),
		waveSpanMS:          reg.Histogram("fleet.wave_span_ms"),
		replansTotal:        reg.Counter("fleet.replans"),
		planComputes:        reg.Counter("fleet.plan_computes"),
		memoHits:            reg.Counter("fleet.memo_hits"),
		memoLookups:         reg.Counter("fleet.memo_lookups"),
		routeLookups:        reg.Counter("fleet.route_lookups"),
		cutovers:            reg.Counter("fleet.cutovers"),
		cutoversRateLimited: reg.Counter("fleet.cutovers_rate_limited"),
		flapsSuppressed:     reg.Counter("fleet.flaps_suppressed"),
		evictions:           reg.Counter("fleet.evictions"),

		byNode:     map[netmodel.NodeID]map[int]struct{}{},
		pendingIdx: map[int]struct{}{},
	}
	m.shards = make([]*shard, cfg.Shards)
	for i := range m.shards {
		pl := planner.New(svc, net)
		pl.Workers = 1 // wave workers are the parallelism; no nesting
		if cfg.Tune != nil {
			cfg.Tune(pl)
		}
		m.shards[i] = &shard{pl: pl}
	}
	return m
}

// Shards returns the effective (power-of-two) shard count.
func (m *Manager) Shards() int { return len(m.shards) }

// OnWave installs a wave-report sink (benchmarks, logs). Must be set
// before Start.
func (m *Manager) OnWave(fn func(WaveReport)) { m.onWave = fn }

// OnEvent installs a live event sink: every per-session control event
// (session = the session's name) plus the manager-level wave lifecycle
// ("wave-open"/"wave-close", session = ""). Must be set before Start;
// called without manager locks held.
func (m *Manager) OnEvent(fn func(session string, e Event)) { m.onEvent = fn }

// emitSession records e in the session's private stream and forwards
// it to the manager's event sink.
func (m *Manager) emitSession(s *Session, e Event) {
	s.emit(e)
	if m.onEvent != nil {
		m.onEvent(s.Name, e)
	}
}

// emitWave publishes a manager-level wave lifecycle event.
func (m *Manager) emitWave(e Event) {
	if m.onEvent != nil {
		m.onEvent("", e)
	}
}

// AttachProbePool wires the fleet to a shared failure detector:
// committed deployments acquire their nodes' heartbeat streams
// (refcounted — one stream per node for the whole fleet), and liveness
// transitions flow into the monitor, which triggers waves. addrOf maps
// a node to its probe endpoint.
func (m *Manager) AttachProbePool(pool *adapt.ProbePool, addrOf func(netmodel.NodeID) string) {
	m.pool = pool
	m.poolAddr = addrOf
	pool.Subscribe(func(node netmodel.NodeID, down bool) {
		if down {
			_ = m.mon.ReportNodeDown(node)
			return
		}
		_ = m.mon.ReportNodeUp(node)
	})
}

// AddPrimary registers service-owner infrastructure (e.g. the primary
// MailServer) shared by every session and exempt from teardown.
func (m *Manager) AddPrimary(component string, node netmodel.NodeID) (planner.Placement, error) {
	p, err := m.shards[0].pl.PrimaryPlacement(component, node)
	if err != nil {
		return planner.Placement{}, err
	}
	m.reg.pin(p)
	return p, nil
}

// shardOf consistent-hashes a session name onto a shard. The shard
// count is a power of two, so the mask keeps the full hash's mixing.
func (m *Manager) shardOf(name string) int {
	h := fnv.New64a()
	h.Write([]byte(name))
	return int(h.Sum64() & uint64(len(m.shards)-1))
}

// AddSession registers a session. Call before Bootstrap; sessions added
// later join the next wave that touches them.
func (m *Manager) AddSession(name string, req planner.Request) *Session {
	m.mu.Lock()
	defer m.mu.Unlock()
	s := &Session{
		Name:          name,
		Req:           req,
		idx:           len(m.sessions),
		shard:         m.shardOf(name),
		lastCutoverMS: math.Inf(-1),
	}
	m.sessions = append(m.sessions, s)
	m.shards[s.shard].sessions = append(m.shards[s.shard].sessions, s)
	return s
}

// Sessions returns the tracked sessions in registration order.
func (m *Manager) Sessions() []*Session {
	m.mu.Lock()
	defer m.mu.Unlock()
	return append([]*Session(nil), m.sessions...)
}

// SessionsPerShard returns the shard occupancy histogram.
func (m *Manager) SessionsPerShard() []int {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]int, len(m.shards))
	for i, sh := range m.shards {
		out[i] = len(sh.sessions)
	}
	return out
}

// Instances returns the number of live shared instances.
func (m *Manager) Instances() int { return m.reg.size() }

// Start subscribes the manager to the monitor. Bootstrap first.
func (m *Manager) Start() {
	m.mu.Lock()
	if m.started {
		m.mu.Unlock()
		return
	}
	m.started = true
	m.mu.Unlock()
	m.mon.Subscribe(m.onChanges)
	if m.pool != nil {
		m.pool.Start()
	}
}

// Stop cancels pending wave timers and deferred commits.
func (m *Manager) Stop() {
	m.mu.Lock()
	m.stopped = true
	debounce := m.debounceCancel
	m.debounceCancel = nil
	sessions := append([]*Session(nil), m.sessions...)
	m.mu.Unlock()
	if debounce != nil {
		debounce()
	}
	for _, s := range sessions {
		s.mu.Lock()
		cancel := s.pendingCancel
		s.pendingCancel = nil
		s.mu.Unlock()
		if cancel != nil {
			cancel()
		}
	}
	if m.pool != nil {
		m.pool.Stop()
	}
}

// Bootstrap plans and commits an initial deployment for every session
// in one wave (governor bypassed: initial placement is not a cutover).
// Returns the wave report.
func (m *Manager) Bootstrap() WaveReport {
	m.mu.Lock()
	all := make([]int, len(m.sessions))
	for i := range all {
		all[i] = i
	}
	m.mu.Unlock()
	return m.runWave(all, true, nil)
}

// onChanges is the fleet's single netmon subscription. It runs under
// the monitor's notify path, so it only classifies the changes into the
// pending-wave session set and arms the debounce timer.
func (m *Manager) onChanges(changes []netmon.Change) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.stopped {
		return
	}
	if m.pendingCh == nil {
		m.pendingCh = planner.NewChangedSet()
	}
	for _, ch := range changes {
		for _, idx := range m.affectedByLocked(ch) {
			m.pendingIdx[idx] = struct{}{}
		}
		switch ch.Kind {
		case "node":
			m.pendingCh.AddNode(netmodel.NodeID(ch.Subject))
		case "link":
			if a, b, ok := strings.Cut(ch.Subject, "~"); ok {
				m.pendingCh.AddLink(netmodel.NodeID(a), netmodel.NodeID(b))
			}
		}
	}
	if m.debounceCancel != nil {
		m.debounceCancel()
	}
	m.debounceCancel = m.sched.After(m.cfg.DebounceMS, m.debounceExpired)
}

// affectedByLocked scopes one change to the sessions it can affect.
// Degradations are local: only sessions whose deployments touch the
// changed element need replanning (the index tracks every node a
// session's placements and paths traverse; a link's users necessarily
// traverse both endpoints). Improvements — a better link, a recovered
// node, a property change — are optimization opportunities for any
// session that can *reach* the changed element, and for no one else: a
// session in a different network partition cannot use it, must not be
// replanned for it, and must not even see the wave in its event stream.
func (m *Manager) affectedByLocked(ch netmon.Change) []int {
	if m.pendingAll {
		return nil
	}
	scoped := func(nodes ...netmodel.NodeID) []int {
		var sets []map[int]struct{}
		for _, n := range nodes {
			sets = append(sets, m.byNode[n])
		}
		var out []int
		for idx := range sets[0] {
			in := true
			for _, s := range sets[1:] {
				if _, ok := s[idx]; !ok {
					in = false
					break
				}
			}
			if in {
				out = append(out, idx)
			}
		}
		return out
	}
	// reachable: every session whose client node has a route to the
	// changed element. The monitor applies changes before notifying, so
	// the current route handle already reflects this change; all client
	// lookups share the element's single shortest-path tree.
	reachable := func(node netmodel.NodeID) []int {
		rc := m.net.Routes()
		var out []int
		for idx, s := range m.sessions {
			if _, ok := rc.Path(node, s.Req.ClientNode); ok {
				out = append(out, idx)
			}
		}
		return out
	}
	global := func() []int {
		m.pendingAll = true
		return nil
	}
	switch ch.Kind {
	case "node":
		node := netmodel.NodeID(ch.Subject)
		if ch.Field == "up" {
			if ch.New == "true" {
				return reachable(node) // recovery: opportunity for its partition
			}
			return scoped(node)
		}
		// A property change (trust drop or raise) can repel sessions
		// using the node or attract sessions that can reach it; the
		// reachable set covers both.
		return reachable(node)
	case "link":
		a, b, ok := strings.Cut(ch.Subject, "~")
		if !ok {
			return global()
		}
		switch ch.Field {
		case "latency":
			if improved(ch.Old, ch.New, false) {
				return reachable(netmodel.NodeID(a))
			}
		case "bandwidth":
			if improved(ch.Old, ch.New, true) {
				return reachable(netmodel.NodeID(a))
			}
		default: // secure flips can attract or repel: the whole partition
			return reachable(netmodel.NodeID(a))
		}
		return scoped(netmodel.NodeID(a), netmodel.NodeID(b))
	}
	return global()
}

// improved reports whether old→new is an improvement (higherIsBetter
// selects the ordering). Unparseable values degrade to "improved" so
// scoping stays conservative.
func improved(oldS, newS string, higherIsBetter bool) bool {
	o, err1 := strconv.ParseFloat(oldS, 64)
	n, err2 := strconv.ParseFloat(newS, 64)
	if err1 != nil || err2 != nil {
		return true
	}
	if higherIsBetter {
		return n > o
	}
	return n < o
}

func (m *Manager) debounceExpired() {
	m.mu.Lock()
	m.debounceCancel = nil
	if m.stopped {
		m.mu.Unlock()
		return
	}
	var affected []int
	if m.pendingAll {
		affected = make([]int, len(m.sessions))
		for i := range affected {
			affected[i] = i
		}
	} else {
		affected = make([]int, 0, len(m.pendingIdx))
		for idx := range m.pendingIdx {
			affected = append(affected, idx)
		}
		sort.Ints(affected)
	}
	m.pendingAll = false
	m.pendingIdx = map[int]struct{}{}
	ch := m.pendingCh
	m.pendingCh = nil
	m.mu.Unlock()
	if len(affected) > 0 {
		m.runWave(affected, false, ch)
	}
}

// waveResult is one session's slot in the wave's replan phase.
type waveResult struct {
	diff *planner.Diff
	hit  bool
	err  error
}

// runWave executes one replan wave over the affected sessions:
// a parallel replan phase — shard-grained workers, routes pinned to one
// epoch, reuse sets synced from one registry snapshot, computations
// deduped through a shared memo — then a sequential commit phase in
// global session order, governed by the cutover brake. bootstrap
// bypasses the governor.
func (m *Manager) runWave(affected []int, bootstrap bool, ch *planner.ChangedSet) WaveReport {
	m.mu.Lock()
	m.waveSeq++
	wave := m.waveSeq
	sessions := m.sessions
	m.mu.Unlock()

	startMS := m.sched.NowMS()
	rc := m.net.Routes()
	epoch := rc.Epoch()
	snapshot := m.reg.placements()
	m.emitWave(Event{AtMS: startMS, Wave: wave, Kind: "wave-open",
		Detail: fmt.Sprintf("sessions=%d epoch=%d", len(affected), epoch)})

	// One reuse-set fingerprint for the whole wave: every shard planner
	// is synced from the same snapshot, so it is computed once.
	fpPl := m.shards[0].pl
	fpPl.Existing = append(fpPl.Existing[:0], snapshot...)
	existingFP := fpPl.ExistingFingerprint()

	rh0, rm0 := rc.Counters()
	memo := planner.NewWaveMemo()

	// Group the wave's sessions by shard; order within a shard follows
	// global order (affected is sorted).
	byShard := make([][]int, len(m.shards))
	for _, idx := range affected {
		sh := sessions[idx].shard
		byShard[sh] = append(byShard[sh], idx)
	}
	slots := make([]waveResult, len(sessions))

	work := make([]int, 0, len(m.shards))
	for sh, idxs := range byShard {
		if len(idxs) > 0 {
			work = append(work, sh)
		}
	}
	var memoLookups atomic.Uint64
	runShard := func(sh int) {
		pl := m.shards[sh].pl
		pl.PinRoutes(rc)
		defer pl.PinRoutes(nil)
		// Batch the shard's sessions by wave key first: same-shaped
		// sessions resolve through ONE memo lookup (and at most one
		// computation), not one lookup per session — the residual serial
		// cost the per-session loop used to pay on every memo hit.
		type waveGroup struct {
			key  string
			dep  *planner.Deployment
			req  planner.Request
			idxs []int
		}
		order := make([]*waveGroup, 0, len(byShard[sh]))
		groups := map[string]*waveGroup{}
		for _, idx := range byShard[sh] {
			s := sessions[idx]
			dep := s.snapshotDep()
			key := planner.WaveKey(s.Req, existingFP, epoch, dep)
			g, ok := groups[key]
			if !ok {
				g = &waveGroup{key: key, dep: dep, req: s.Req}
				groups[key] = g
				order = append(order, g) // first-occurrence order: deterministic
			}
			g.idxs = append(g.idxs, idx)
		}
		for _, g := range order {
			memoLookups.Add(1)
			g := g
			diff, _, hit, err := memo.Do(g.key, func() (*planner.Diff, planner.Stats, error) {
				// Each computation plans against the wave-start world:
				// the planner's reuse set is re-synced so earlier
				// sessions' in-wave mutations never leak across
				// sessions (or shards — this is what keeps output
				// invariant under any shard count). The changed-element
				// set scopes a solver-backed planner's repair; other
				// backends fall through to the full rewire replan.
				pl.Existing = append(pl.Existing[:0], snapshot...)
				d, err := pl.RepairReplan(g.dep, g.req, ch)
				return d, pl.Stats(), err
			})
			for k, idx := range g.idxs {
				d := diff
				if d != nil && k > 0 {
					d = diff.Clone() // members commit independent copies
				}
				slots[idx] = waveResult{diff: d, hit: hit || k > 0, err: err}
			}
		}
	}
	if workers := m.cfg.Workers; workers > 1 && len(work) > 1 {
		if workers > len(work) {
			workers = len(work)
		}
		ch := make(chan int)
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for sh := range ch {
					runShard(sh)
				}
			}()
		}
		for _, sh := range work {
			ch <- sh
		}
		close(ch)
		wg.Wait()
	} else {
		for _, sh := range work {
			runShard(sh)
		}
	}

	_, misses := memo.Counters()
	rh1, rm1 := rc.Counters()
	report := WaveReport{
		Wave:         wave,
		StartMS:      startMS,
		Sessions:     len(affected),
		PlanComputes: int(misses),
		MemoLookups:  int(memoLookups.Load()),
		RouteLookups: int((rh1 + rm1) - (rh0 + rm0)),
		Epoch:        epoch,
	}
	// MemoHits counts sessions that shared another session's computation
	// (in-shard batch members and cross-shard memo hits alike), so
	// Sessions = PlanComputes + MemoHits + (failed computes' extra members).
	for _, idx := range affected {
		if slots[idx].hit {
			report.MemoHits++
		}
	}

	// Commit phase: sequential, global session order.
	lastCommitMS := startMS
	evicted := map[string]bool{}
	for _, idx := range affected {
		s := sessions[idx]
		r := slots[idx]
		now := m.sched.NowMS()
		// This wave's verdict supersedes any deferred commit still
		// queued from an earlier wave: that diff was planned against a
		// topology view this wave has already replaced.
		s.cancelPending()
		if r.err != nil {
			report.Failed++
			m.emitSession(s, Event{AtMS: now, Wave: wave, Kind: "failed", Detail: r.err.Error()})
			continue
		}
		if !bootstrap {
			m.emitSession(s, Event{AtMS: now, Wave: wave, Kind: "wave"})
		}
		diff := r.diff
		// Evictions are registry-level facts, applied once per wave no
		// matter how many sessions' replans reported them.
		for _, p := range diff.Evicted {
			if !evicted[p.Key()] {
				evicted[p.Key()] = true
				m.reg.evict(p.Key())
				m.evictions.Inc()
			}
		}
		old := s.snapshotDep()
		if diff.Unchanged() && old != nil {
			report.Unchanged++
			m.emitSession(s, Event{AtMS: now, Wave: wave, Kind: "unchanged"})
			continue
		}
		forced := bootstrap || m.depBroken(old, rc)
		if !bootstrap {
			s.mu.Lock()
			lastCut := s.lastCutoverMS
			s.mu.Unlock()
			if m.gov.suppressed(now, lastCut, forced) {
				report.Suppressed++
				m.flapsSuppressed.Inc()
				m.emitSession(s, Event{AtMS: now, Wave: wave, Kind: "suppressed"})
				continue
			}
		}
		commitAt := now
		if !bootstrap {
			commitAt = m.gov.reserveAt(now)
		}
		if commitAt > lastCommitMS {
			lastCommitMS = commitAt
		}
		if commitAt > now {
			report.Deferred++
			m.cutoversRateLimited.Inc()
			m.emitSession(s, Event{AtMS: now, Wave: wave, Kind: "deferred",
				Detail: fmt.Sprintf("commit at %.1fms", commitAt)})
			m.scheduleCommit(s, wave, diff, commitAt-now)
			continue
		}
		m.commit(s, wave, diff, bootstrap)
		report.Cutovers++
	}
	report.SpanMS = lastCommitMS - startMS

	m.waves.Inc()
	m.waveSessions.Observe(float64(report.Sessions))
	m.waveSpanMS.Observe(report.SpanMS)
	m.replansTotal.Add(int64(report.Sessions))
	m.planComputes.Add(int64(report.PlanComputes))
	m.memoHits.Add(int64(report.MemoHits))
	m.memoLookups.Add(int64(report.MemoLookups))
	m.routeLookups.Add(int64(report.RouteLookups))
	m.cutovers.Add(int64(report.Cutovers))
	m.emitWave(Event{AtMS: m.sched.NowMS(), Wave: wave, Kind: "wave-close",
		Detail: fmt.Sprintf(
			"sessions=%d computes=%d memo_hits=%d cutovers=%d deferred=%d suppressed=%d unchanged=%d failed=%d span=%.1fms",
			report.Sessions, report.PlanComputes, report.MemoHits, report.Cutovers,
			report.Deferred, report.Suppressed, report.Unchanged, report.Failed, report.SpanMS)})
	if m.onWave != nil {
		m.onWave(report)
	}
	return report
}

// depBroken reports whether a deployment is no longer serving — a node
// died under it, or the network partitioned between consecutive
// placements. Broken deployments force their cutover past anti-flap
// hysteresis (suppressing the repair of a dead session would be
// availability loss, not flap damping).
func (m *Manager) depBroken(dep *planner.Deployment, rc *netmodel.RouteCache) bool {
	if dep == nil {
		return true
	}
	for _, p := range dep.Placements {
		if n, ok := m.net.Node(p.Node); !ok || n.Down {
			return true
		}
	}
	for i := 0; i+1 < len(dep.Placements); i++ {
		if _, ok := rc.Path(dep.Placements[i].Node, dep.Placements[i+1].Node); !ok {
			return true
		}
	}
	return false
}

// scheduleCommit arms a deferred commit (the commit-phase loop already
// withdrew any previous one).
func (m *Manager) scheduleCommit(s *Session, wave uint64, diff *planner.Diff, delayMS float64) {
	cancel := m.sched.After(delayMS, func() {
		s.mu.Lock()
		s.pendingCancel = nil
		s.mu.Unlock()
		m.mu.Lock()
		stopped := m.stopped
		m.mu.Unlock()
		if stopped {
			return
		}
		m.commit(s, wave, diff, false)
		m.cutovers.Inc()
	})
	s.mu.Lock()
	s.pendingCancel = cancel
	s.mu.Unlock()
}

// commit applies one session's diff: acquire-before-release against the
// shared registry (deploy-before-teardown at fleet scope), heartbeat
// refcounts, the affected-session index, and the session's own state.
func (m *Manager) commit(s *Session, wave uint64, diff *planner.Diff, bootstrap bool) {
	now := m.sched.NowMS()
	// A deferred commit may land after a newer wave already rewired the
	// session; the newer wave canceled us, but guard against the race
	// where both were already scheduled at the same virtual instant.
	s.mu.Lock()
	old := s.dep
	s.mu.Unlock()

	for _, p := range diff.New.Placements {
		m.reg.acquire(p)
		if m.pool != nil && m.poolAddr != nil {
			m.pool.Acquire(p.Node, m.poolAddr(p.Node))
		}
	}
	if old != nil {
		for _, p := range old.Placements {
			m.reg.release(p.Key())
			if m.pool != nil {
				m.pool.Release(p.Node)
			}
		}
	}

	s.mu.Lock()
	s.dep = diff.New
	if !bootstrap {
		s.lastCutoverMS = now
	}
	s.mu.Unlock()
	m.reindex(s, old, diff.New)

	kind := "adapted"
	if bootstrap {
		kind = "planned"
	}
	m.emitSession(s, Event{AtMS: now, Wave: wave, Kind: kind, Detail: depSummary(diff.New)})
}

// reindex swaps the session's entries in the node→sessions index from
// its old deployment's footprint to the new one. The footprint is every
// node a placement sits on or an edge path traverses — the set of
// elements whose degradation can affect the session.
func (m *Manager) reindex(s *Session, old, new_ *planner.Deployment) {
	m.mu.Lock()
	defer m.mu.Unlock()
	for _, n := range footprint(old) {
		if set := m.byNode[n]; set != nil {
			delete(set, s.idx)
			if len(set) == 0 {
				delete(m.byNode, n)
			}
		}
	}
	for _, n := range footprint(new_) {
		set := m.byNode[n]
		if set == nil {
			set = map[int]struct{}{}
			m.byNode[n] = set
		}
		set[s.idx] = struct{}{}
	}
}

// footprint lists the nodes a deployment touches (deduplicated).
func footprint(dep *planner.Deployment) []netmodel.NodeID {
	if dep == nil {
		return nil
	}
	seen := map[netmodel.NodeID]struct{}{}
	var out []netmodel.NodeID
	add := func(n netmodel.NodeID) {
		if _, ok := seen[n]; !ok {
			seen[n] = struct{}{}
			out = append(out, n)
		}
	}
	for _, p := range dep.Placements {
		add(p.Node)
	}
	for _, e := range dep.Edges {
		for _, n := range e.Path.Nodes {
			add(n)
		}
	}
	return out
}

// depSummary renders a deployment as its placement chain.
func depSummary(dep *planner.Deployment) string {
	if dep == nil {
		return "<none>"
	}
	parts := make([]string, len(dep.Placements))
	for i, p := range dep.Placements {
		parts[i] = p.Key()
	}
	return strings.Join(parts, " -> ")
}
