package metrics

import (
	"bytes"
	"math"
	"math/rand"
	"sort"
	"strconv"
	"strings"
	"testing"
)

// promRelErr is the documented worst-case quantile error of the
// log-bucket layout: one sub-octave bucket's relative width.
const promRelErr = math.Ln2 / histSubOctave // ln(2^(1/8)) ≈ 0.0866; 2^(1/8)-1 ≈ 0.0905

// parsePromText indexes an exposition into series → value.
func parsePromText(t *testing.T, text string) map[string]float64 {
	t.Helper()
	out := map[string]float64{}
	for _, line := range strings.Split(text, "\n") {
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		name, labels, v, err := parsePromSample(line)
		if err != nil {
			t.Fatalf("parse %q: %v", line, err)
		}
		out[name+labels] = v
	}
	return out
}

// histSeries extracts one histogram family's buckets (sorted by le),
// sum, and count from a parsed exposition.
func histSeries(t *testing.T, samples map[string]float64, fam string) (les []float64, cum []float64, sum, count float64) {
	t.Helper()
	for key, v := range samples {
		switch {
		case strings.HasPrefix(key, fam+"_bucket{"):
			start := strings.Index(key, `le="`)
			if start < 0 {
				t.Fatalf("bucket without le: %s", key)
			}
			leStr := key[start+4:]
			leStr = leStr[:strings.IndexByte(leStr, '"')]
			le, err := parsePromFloat(leStr)
			if err != nil {
				t.Fatalf("bad le %q: %v", leStr, err)
			}
			les = append(les, le)
			cum = append(cum, v)
		case key == fam+"_sum":
			sum = v
		case key == fam+"_count":
			count = v
		}
	}
	sort.Sort(sortByLE{les, cum})
	return les, cum, sum, count
}

type sortByLE struct{ les, cum []float64 }

func (s sortByLE) Len() int           { return len(s.les) }
func (s sortByLE) Less(i, j int) bool { return s.les[i] < s.les[j] }
func (s sortByLE) Swap(i, j int) {
	s.les[i], s.les[j] = s.les[j], s.les[i]
	s.cum[i], s.cum[j] = s.cum[j], s.cum[i]
}

// bucketQuantile reconstructs a quantile from cumulative buckets the
// way a Prometheus consumer would: the upper bound of the first bucket
// whose cumulative count reaches the rank.
func bucketQuantile(les, cum []float64, q float64) float64 {
	total := cum[len(cum)-1]
	rank := math.Ceil(q * total)
	if rank < 1 {
		rank = 1
	}
	for i := range cum {
		if cum[i] >= rank {
			return les[i]
		}
	}
	return les[len(les)-1]
}

// TestPromHistogramOracle is the exposition-correctness satellite: the
// rendered _bucket/_sum/_count series must reconstruct quantiles that
// match a sorted-sample oracle within the documented ≤9.05% bound.
func TestPromHistogramOracle(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("oracle.latency")
	rng := rand.New(rand.NewSource(42))
	const n = 10000
	samples := make([]float64, n)
	for i := range samples {
		// Log-normal-ish spread across several octaves: 0.1ms .. ~2s.
		v := 0.1 * math.Exp(rng.NormFloat64()*1.5+2)
		samples[i] = v
		h.Observe(v)
	}
	sort.Float64s(samples)

	var buf bytes.Buffer
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatalf("WritePrometheus: %v", err)
	}
	parsed := parsePromText(t, buf.String())
	les, cum, sum, count := histSeries(t, parsed, "partsvc_oracle_latency")

	if len(les) == 0 {
		t.Fatal("no bucket series rendered")
	}
	if count != n {
		t.Fatalf("_count = %v, want %d", count, n)
	}
	if !math.IsInf(les[len(les)-1], 1) {
		t.Fatalf("last bucket le = %v, want +Inf", les[len(les)-1])
	}
	if cum[len(cum)-1] != n {
		t.Fatalf("+Inf bucket = %v, want %d", cum[len(cum)-1], n)
	}
	var want float64
	for _, v := range samples {
		want += v
	}
	if math.Abs(sum-want) > math.Abs(want)*1e-9 {
		t.Fatalf("_sum = %v, want %v", sum, want)
	}
	for i := 1; i < len(cum); i++ {
		if cum[i] < cum[i-1] {
			t.Fatalf("buckets not cumulative at le=%v: %v < %v", les[i], cum[i], cum[i-1])
		}
	}

	// Bucket upper bounds are a ratio of 2^(1/8) apart, so the bound
	// returned for a rank is at most one bucket width above the true
	// sample: relative error ≤ 2^(1/8)-1 ≈ 9.05%.
	const tol = 0.0906
	for _, q := range []float64{0.50, 0.90, 0.99} {
		got := bucketQuantile(les, cum, q)
		oracle := samples[int(math.Ceil(q*float64(n)))-1]
		rel := math.Abs(got-oracle) / oracle
		if rel > tol {
			t.Errorf("q=%.2f: bucket quantile %v vs oracle %v (rel err %.4f > %.4f)",
				q, got, oracle, rel, tol)
		}
	}
}

// TestPromExpositionLints feeds a populated registry — counters,
// labeled counters, gauges, histograms, provider-backed histograms,
// sections — through the format linter.
func TestPromExpositionLints(t *testing.T) {
	r := NewRegistry()
	r.Counter("wire.pool_hits").Add(7)
	r.CounterL("api.requests", Label{"route", "/v1/sessions"}, Label{"code", "200"}).Add(3)
	r.CounterL("api.requests", Label{"route", "/v1/plan"}, Label{"code", "400"}).Add(1)
	r.Gauge("fleet.sessions").Set(5000)
	h := r.Histogram("rpc.client.send")
	for i := 1; i <= 100; i++ {
		h.Observe(float64(i) * 0.37)
	}
	var sh ShardedHistogram
	for i := 0; i < 50; i++ {
		sh.Observe(float64(i) * 1.1)
	}
	r.RegisterHistogramFunc("api.latency_ms", sh.Snapshot, Label{"route", "/metrics"})
	r.RegisterSection("planner", func() []KV {
		return []KV{
			{Name: "plans", Value: "12"},
			{Name: "memo_hit_pct", Value: "93.1%"}, // non-numeric: skipped
			{Name: "inf_capacity", Value: "+Inf"},  // non-finite: skipped
		}
	})

	var buf bytes.Buffer
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatalf("WritePrometheus: %v", err)
	}
	text := buf.String()
	if err := LintPrometheusText(strings.NewReader(text)); err != nil {
		t.Fatalf("lint failed: %v\n%s", err, text)
	}

	parsed := parsePromText(t, text)
	if got := parsed[`partsvc_api_requests_total{code="200",route="/v1/sessions"}`]; got != 3 {
		t.Errorf("labeled counter = %v, want 3\n%s", got, text)
	}
	if got := parsed["partsvc_wire_pool_hits_total"]; got != 7 {
		t.Errorf("plain counter = %v, want 7", got)
	}
	if got := parsed["partsvc_fleet_sessions"]; got != 5000 {
		t.Errorf("gauge = %v, want 5000", got)
	}
	if got := parsed[`partsvc_api_latency_ms_count{route="/metrics"}`]; got != 50 {
		t.Errorf("provider histogram count = %v, want 50", got)
	}
	if got := parsed["partsvc_planner_plans"]; got != 12 {
		t.Errorf("section gauge = %v, want 12", got)
	}
	if _, ok := parsed["partsvc_planner_memo_hit_pct"]; ok {
		t.Error("non-numeric section value leaked into exposition")
	}
	if strings.Contains(text, "+Inf\n# TYPE partsvc_planner_inf_capacity") ||
		strings.Contains(text, "partsvc_planner_inf_capacity") {
		t.Error("non-finite section value leaked into exposition")
	}
}

// TestPromLintCatchesBadInput makes sure the linter actually rejects
// the failure shapes CI relies on it to catch.
func TestPromLintCatchesBadInput(t *testing.T) {
	cases := map[string]string{
		"bad metric name":  "9foo 1\n",
		"missing value":    "foo\n",
		"bad value":        "foo abc\n",
		"unquoted label":   `foo{a=b} 1` + "\n",
		"duplicate series": "foo 1\nfoo 1\n",
		"duplicate TYPE":   "# TYPE foo counter\n# TYPE foo counter\nfoo 1\n",
		"unknown type":     "# TYPE foo widget\nfoo 1\n",
		"no +Inf bucket": "# TYPE h histogram\n" +
			`h_bucket{le="1"} 2` + "\nh_sum 2\nh_count 2\n",
		"non-cumulative buckets": "# TYPE h histogram\n" +
			`h_bucket{le="1"} 5` + "\n" + `h_bucket{le="2"} 3` + "\n" +
			`h_bucket{le="+Inf"} 5` + "\nh_sum 9\nh_count 5\n",
		"count mismatch": "# TYPE h histogram\n" +
			`h_bucket{le="+Inf"} 5` + "\nh_sum 9\nh_count 6\n",
	}
	for name, in := range cases {
		if err := LintPrometheusText(strings.NewReader(in)); err == nil {
			t.Errorf("%s: lint accepted invalid input:\n%s", name, in)
		}
	}
	good := "# HELP ok A fine counter.\n# TYPE ok counter\nok 3\n" +
		"# TYPE h histogram\n" +
		`h_bucket{le="0.5"} 1` + "\n" + `h_bucket{le="+Inf"} 4` + "\n" +
		"h_sum 3.5\nh_count 4\n"
	if err := LintPrometheusText(strings.NewReader(good)); err != nil {
		t.Errorf("lint rejected valid input: %v", err)
	}
}

// TestCounterLFamilies verifies labeled series are distinct counters
// but share a family, and that Snapshot renders them with labels.
func TestCounterLFamilies(t *testing.T) {
	r := NewRegistry()
	a := r.CounterL("api.req", Label{"route", "a"})
	b := r.CounterL("api.req", Label{"route", "b"})
	if a == b {
		t.Fatal("different label sets returned the same counter")
	}
	if again := r.CounterL("api.req", Label{"route", "a"}); again != a {
		t.Fatal("same label set returned a different counter")
	}
	a.Add(2)
	b.Add(5)

	found := map[string]string{}
	for _, sec := range r.Snapshot() {
		if sec.Name != "api" {
			continue
		}
		for _, kv := range sec.Items {
			found[kv.Name] = kv.Value
		}
	}
	if found["req{route=a}"] != "2" || found["req{route=b}"] != "5" {
		t.Fatalf("snapshot missing labeled series: %v", found)
	}
}

// TestHistogramBuckets checks the raw bucket dump: bounds strictly
// increasing, final bound +Inf, counts summing to Count(), and each
// sample inside (prev, bound].
func TestHistogramBuckets(t *testing.T) {
	var h Histogram
	vals := []float64{0.001, 0.5, 1, 3, 250, 4096, 1e7}
	for _, v := range vals {
		h.Observe(v)
	}
	bs := h.Buckets()
	if !math.IsInf(bs[len(bs)-1].UpperBound, 1) {
		t.Fatalf("final bound = %v, want +Inf", bs[len(bs)-1].UpperBound)
	}
	var total uint64
	prev := math.Inf(-1)
	for i, b := range bs {
		if b.UpperBound <= prev {
			t.Fatalf("bounds not increasing at %d: %v <= %v", i, b.UpperBound, prev)
		}
		prev = b.UpperBound
		total += b.Count
	}
	if total != h.Count() {
		t.Fatalf("bucket counts sum to %d, want %d", total, h.Count())
	}
	// Every observed sample must sit at or below the bound of its bucket.
	for _, v := range vals {
		idx := bucketOf(v)
		if v > bs[idx].UpperBound {
			t.Errorf("sample %v above its bucket bound %v", v, bs[idx].UpperBound)
		}
	}
}

// TestPromName pins the sanitization rules handlers rely on.
func TestPromName(t *testing.T) {
	cases := []struct{ in, suffix, want string }{
		{"wire.pool_hits", "_total", "partsvc_wire_pool_hits_total"},
		{"api.requests_total", "_total", "partsvc_api_requests_total"},
		{"rpc.client.send", "", "partsvc_rpc_client_send"},
		{"weird-name!", "", "partsvc_weird_name_"},
	}
	for _, c := range cases {
		if got := promName(c.in, c.suffix); got != c.want {
			t.Errorf("promName(%q,%q) = %q, want %q", c.in, c.suffix, got, c.want)
		}
	}
	if s := promFloat(math.Inf(1)); s != "+Inf" {
		t.Errorf("promFloat(+Inf) = %q", s)
	}
	if s := promFloat(1.5); s != strconv.FormatFloat(1.5, 'g', -1, 64) {
		t.Errorf("promFloat(1.5) = %q", s)
	}
}
