package metrics

import (
	"runtime"
	"sync/atomic"
	_ "unsafe" // for go:linkname (procHint)
)

// Sharded recorders: per-P striped counters and histograms for paths
// hot enough that a single atomic cache line becomes the bottleneck.
// A plain atomic.Uint64 bumped by every caller makes all cores fight
// over one cache line; the sharded variants spread updates across
// per-P cells (cache-line padded) and fold them back together at
// snapshot time. Folding is merge-exact: Load/Snapshot of the shards
// equals the value a single unsharded recorder fed the same updates
// would report — the same contract the parallel bench shards rely on.
//
// The shard index is the calling goroutine's current P, read via
// runtime procPin (the scheduler hint sync.Pool uses). Pinning costs a
// few nanoseconds and the P can migrate between the read and the
// update; that only moves the update to a neighbouring cell, never
// loses it, so exactness is unaffected.

// counterShards and histShards bound the stripe widths. The effective
// width is the smallest power of two covering the CPU count (so a
// 1-CPU container pays for one cell), capped here.
const (
	counterShards = 32
	histShards    = 8
)

// shardMask folds P ids onto the effective stripe width. P ids above
// the width (GOMAXPROCS raised after init) wrap instead of overflow.
var shardMask = func() uint32 {
	n := runtime.NumCPU()
	w := uint32(1)
	for int(w) < n && w < counterShards {
		w <<= 1
	}
	return w - 1
}()

//go:linkname runtime_procPin runtime.procPin
func runtime_procPin() int

//go:linkname runtime_procUnpin runtime.procUnpin
func runtime_procUnpin()

// procHint returns the calling goroutine's current P id — a cheap,
// contention-free shard selector.
func procHint() uint32 {
	p := runtime_procPin()
	runtime_procUnpin()
	return uint32(p)
}

// counterCell is one padded stripe: the value plus enough padding that
// two adjacent cells never share a 64-byte cache line.
type counterCell struct {
	v atomic.Int64
	_ [56]byte
}

// ShardedCounter is a Counter whose increments stripe across per-P
// cells. The zero value is ready to use. Use it where many goroutines
// bump the same counter on a fast path (per-frame transport counters);
// for low-rate counters a plain Counter is smaller and just as fast.
type ShardedCounter struct {
	cells [counterShards]counterCell
}

// Add adds n to the calling P's cell.
func (c *ShardedCounter) Add(n int64) {
	c.cells[procHint()&shardMask].v.Add(n)
}

// Inc adds one.
func (c *ShardedCounter) Inc() { c.Add(1) }

// Load folds the cells into the exact total.
func (c *ShardedCounter) Load() int64 {
	var sum int64
	for i := uint32(0); i <= shardMask; i++ {
		sum += c.cells[i].v.Load()
	}
	return sum
}

// ShardedHistogram is a Histogram whose Observes stripe across per-P
// shards, merged exactly at snapshot time. The zero value is ready to
// use. It trades memory (histShards full bucket arrays) for an
// uncontended Observe, so reserve it for recorders on the per-request
// path (queue wait times); rendering-side histograms should stay
// plain.
type ShardedHistogram struct {
	shards [histShards]Histogram
}

// histMask folds P ids onto the histogram stripe width.
var histMask = func() uint32 {
	m := shardMask
	if m > histShards-1 {
		m = histShards - 1
	}
	return m
}()

// Observe records one sample into the calling P's shard.
func (h *ShardedHistogram) Observe(v float64) {
	h.shards[procHint()&histMask].Observe(v)
}

// Count returns the total sample count across shards.
func (h *ShardedHistogram) Count() uint64 {
	var n uint64
	for i := range h.shards {
		n += h.shards[i].Count()
	}
	return n
}

// Snapshot merges the shards into one Histogram. The merge is exact:
// quantiles of the snapshot equal quantiles of an unsharded Histogram
// fed the same samples.
func (h *ShardedHistogram) Snapshot() *Histogram {
	out := &Histogram{}
	for i := range h.shards {
		out.Merge(&h.shards[i])
	}
	return out
}
