package metrics

import (
	"math"
	"math/rand"
	"sort"
	"sync"
	"testing"
)

// relErr is the histogram's worst-case relative quantile error: eight
// sub-buckets per octave bound values within a factor of 2^(1/8).
const relErr = 0.0905

// oracle computes the exact quantile from a sorted copy of samples.
func oracle(samples []float64, q float64) float64 {
	s := append([]float64(nil), samples...)
	sort.Float64s(s)
	idx := int(q * float64(len(s)-1))
	return s[idx]
}

func checkQuantiles(t *testing.T, h *Histogram, samples []float64) {
	t.Helper()
	for _, q := range []float64{0.50, 0.90, 0.99} {
		want := oracle(samples, q)
		got := h.Quantile(q)
		if want == 0 {
			if got != 0 {
				t.Errorf("q%.2f: got %g, want 0", q, got)
			}
			continue
		}
		if rel := math.Abs(got-want) / want; rel > relErr {
			t.Errorf("q%.2f: got %g, oracle %g (rel err %.3f > %.3f)", q, got, want, rel, relErr)
		}
	}
	if got, want := h.Max(), oracle(samples, 1); got != want {
		t.Errorf("Max: got %g, want exact %g", got, want)
	}
}

func TestHistogramQuantilesVsOracle(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	dists := map[string]func() float64{
		"uniform":   func() float64 { return rng.Float64() * 100 },
		"exp":       func() float64 { return rng.ExpFloat64() * 5 },
		"lognormal": func() float64 { return math.Exp(rng.NormFloat64()) },
		"tiny":      func() float64 { return rng.Float64() * 1e-4 },
	}
	for name, draw := range dists {
		t.Run(name, func(t *testing.T) {
			h := &Histogram{}
			samples := make([]float64, 5000)
			for i := range samples {
				samples[i] = draw()
				h.Observe(samples[i])
			}
			if h.Count() != 5000 {
				t.Fatalf("Count = %d, want 5000", h.Count())
			}
			checkQuantiles(t, h, samples)
		})
	}
}

func TestHistogramMergeEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	whole := &Histogram{}
	parts := []*Histogram{{}, {}, {}}
	var samples []float64
	for i := 0; i < 3000; i++ {
		v := rng.ExpFloat64() * 10
		samples = append(samples, v)
		whole.Observe(v)
		parts[i%3].Observe(v)
	}
	merged := &Histogram{}
	for _, p := range parts {
		merged.Merge(p)
	}
	if merged.Count() != whole.Count() {
		t.Fatalf("merged count %d != whole count %d", merged.Count(), whole.Count())
	}
	// Sums accumulate in different orders, so only bitwise-near.
	if math.Abs(merged.Sum()-whole.Sum()) > 1e-9*whole.Sum() {
		t.Fatalf("merged sum %g != whole sum %g", merged.Sum(), whole.Sum())
	}
	if merged.Min() != whole.Min() || merged.Max() != whole.Max() {
		t.Fatalf("merged min/max %g/%g != whole %g/%g",
			merged.Min(), merged.Max(), whole.Min(), whole.Max())
	}
	for _, q := range []float64{0.5, 0.9, 0.99} {
		if merged.Quantile(q) != whole.Quantile(q) {
			t.Errorf("q%.2f: merged %g != whole %g", q, merged.Quantile(q), whole.Quantile(q))
		}
	}
	checkQuantiles(t, merged, samples)
}

func TestHistogramZeroAndExtremes(t *testing.T) {
	h := &Histogram{}
	h.Observe(0)
	h.Observe(-5) // clamped into the bottom bucket
	h.Observe(1e9)
	if h.Count() != 3 {
		t.Fatalf("Count = %d, want 3", h.Count())
	}
	if h.Min() > 1e-6 {
		t.Errorf("Min = %g, want ~0", h.Min())
	}
	if h.Max() != 1e9 {
		t.Errorf("Max = %g, want 1e9", h.Max())
	}
	// Quantiles stay within observed range even for out-of-range buckets.
	if q := h.Quantile(0.99); q > h.Max() || q < h.Min() {
		t.Errorf("q99 = %g outside [%g, %g]", q, h.Min(), h.Max())
	}
}

func TestHistogramEmpty(t *testing.T) {
	h := &Histogram{}
	if h.Count() != 0 || h.Mean() != 0 || h.Quantile(0.5) != 0 || h.Min() != 0 || h.Max() != 0 {
		t.Errorf("empty histogram must read all-zero: count=%d mean=%g q50=%g min=%g max=%g",
			h.Count(), h.Mean(), h.Quantile(0.5), h.Min(), h.Max())
	}
}

// TestHistogramConcurrent drives Observe from many goroutines; run
// under -race this checks the atomic paths, and the totals must be
// exact regardless.
func TestHistogramConcurrent(t *testing.T) {
	h := &Histogram{}
	const workers, per = 8, 1000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for i := 0; i < per; i++ {
				h.Observe(rng.Float64() * 50)
			}
		}(int64(w))
	}
	wg.Wait()
	if h.Count() != workers*per {
		t.Fatalf("Count = %d, want %d", h.Count(), workers*per)
	}
	if h.Min() < 0 || h.Max() > 50 {
		t.Fatalf("min/max %g/%g outside [0, 50]", h.Min(), h.Max())
	}
}
