package metrics

import (
	"encoding/json"
	"net/http/httptest"
	"strings"
	"testing"
)

func TestRegistrySectionsRenderInOrder(t *testing.T) {
	r := NewRegistry()
	r.RegisterSection("transport", func() []KV {
		return []KV{KVf("frames_sent", "%d", 7)}
	})
	r.RegisterSection("planner", func() []KV {
		return []KV{KVf("chains", "%d", 48)}
	})
	r.Counter("wire.pool_hits").Add(3)
	r.Gauge("sched.depth").Set(1.5)
	r.Histogram("rpc.client.send").Observe(2)

	secs := r.Snapshot()
	var names []string
	for _, s := range secs {
		names = append(names, s.Name)
	}
	// Registered sections first (registration order), then owned
	// metrics grouped by prefix, alphabetical.
	want := []string{"transport", "planner", "rpc", "sched", "wire"}
	if strings.Join(names, ",") != strings.Join(want, ",") {
		t.Fatalf("section order = %v, want %v", names, want)
	}

	out := r.Render()
	for _, frag := range []string{"frames_sent", "7", "chains", "48", "pool_hits",
		"client.send.count", "client.send.p99", "depth", "1.50"} {
		if !strings.Contains(out, frag) {
			t.Errorf("Render missing %q:\n%s", frag, out)
		}
	}
}

func TestRegistryReplaceAndUnregister(t *testing.T) {
	r := NewRegistry()
	r.RegisterSection("s", func() []KV { return []KV{KVf("v", "old")} })
	r.RegisterSection("s", func() []KV { return []KV{KVf("v", "new")} })
	if got := r.Snapshot(); len(got) != 1 || got[0].Items[0].Value != "new" {
		t.Fatalf("re-registered section not replaced: %+v", got)
	}
	r.UnregisterSection("s")
	if got := r.Snapshot(); len(got) != 0 {
		t.Fatalf("section not removed: %+v", got)
	}
}

func TestRegistryGetOrCreateIdentity(t *testing.T) {
	r := NewRegistry()
	if r.Counter("a.x") != r.Counter("a.x") {
		t.Error("Counter not stable by name")
	}
	if r.Gauge("a.y") != r.Gauge("a.y") {
		t.Error("Gauge not stable by name")
	}
	if r.Histogram("a.z") != r.Histogram("a.z") {
		t.Error("Histogram not stable by name")
	}
	// Undotted names land in "misc".
	r.Counter("plain").Add(1)
	found := false
	for _, s := range r.Snapshot() {
		if s.Name == "misc" {
			found = true
		}
	}
	if !found {
		t.Error("undotted metric did not land in misc section")
	}
}

func TestRegistryServeHTTP(t *testing.T) {
	r := NewRegistry()
	r.RegisterSection("transport", func() []KV {
		return []KV{KVf("bytes_sent", "%d", 1024)}
	})
	r.Counter("wire.hits").Add(5)
	rec := httptest.NewRecorder()
	r.ServeHTTP(rec, nil)
	if ct := rec.Header().Get("Content-Type"); ct != "application/json" {
		t.Fatalf("Content-Type = %q", ct)
	}
	var got map[string]map[string]string
	if err := json.Unmarshal(rec.Body.Bytes(), &got); err != nil {
		t.Fatalf("bad JSON: %v\n%s", err, rec.Body.String())
	}
	if got["transport"]["bytes_sent"] != "1024" {
		t.Errorf("transport.bytes_sent = %q, want 1024", got["transport"]["bytes_sent"])
	}
	if got["wire"]["hits"] != "5" {
		t.Errorf("wire.hits = %q, want 5", got["wire"]["hits"])
	}
}

// TestRecorderMergeEquivalence is the satellite check for the bench
// fan-in: sharded recorders merged in order must report the same
// quantiles as one recorder fed the same samples serially.
func TestRecorderMergeEquivalence(t *testing.T) {
	whole := &Recorder{}
	shards := []*Recorder{{}, {}, {}, {}}
	for i := 0; i < 4001; i++ {
		v := float64((i * 7919) % 1000) // deterministic pseudo-shuffle
		whole.Add(v)
		shards[i%4].Add(v)
	}
	merged := &Recorder{}
	for _, s := range shards {
		merged.Merge(s)
	}
	merged.Merge(nil)         // nil shard is a no-op
	merged.Merge(&Recorder{}) // empty shard is a no-op
	if merged.Count() != whole.Count() {
		t.Fatalf("count %d != %d", merged.Count(), whole.Count())
	}
	for _, p := range []float64{50, 90, 95, 99, 100} {
		if m, w := merged.Percentile(p), whole.Percentile(p); m != w {
			t.Errorf("p%g: merged %g != whole %g", p, m, w)
		}
	}
	if merged.Mean() != whole.Mean() {
		t.Errorf("mean: merged %g != whole %g", merged.Mean(), whole.Mean())
	}
}

// Merging must also work after the recorder has sorted itself for a
// percentile read (sorted flag resets).
func TestRecorderMergeAfterSort(t *testing.T) {
	r := &Recorder{}
	r.Add(3)
	r.Add(1)
	_ = r.Percentile(50) // forces sort
	o := &Recorder{}
	o.Add(2)
	r.Merge(o)
	if got := r.Percentile(50); got != 2 {
		t.Fatalf("median after merge = %g, want 2", got)
	}
}
