package metrics

import (
	"math"
	"strings"
	"sync"
	"testing"
	"testing/quick"
	"time"
)

func TestRecorderEmpty(t *testing.T) {
	var r Recorder
	if r.Count() != 0 || r.Mean() != 0 || r.Min() != 0 || r.Max() != 0 ||
		r.Percentile(50) != 0 || r.Stddev() != 0 {
		t.Error("empty recorder must report zeros")
	}
}

func TestRecorderStats(t *testing.T) {
	var r Recorder
	for _, v := range []float64{4, 1, 3, 2, 5} {
		r.Add(v)
	}
	if r.Count() != 5 {
		t.Errorf("count = %d", r.Count())
	}
	if r.Mean() != 3 {
		t.Errorf("mean = %v", r.Mean())
	}
	if r.Min() != 1 || r.Max() != 5 {
		t.Errorf("min/max = %v/%v", r.Min(), r.Max())
	}
	if got := r.Percentile(50); got != 3 {
		t.Errorf("p50 = %v", got)
	}
	if got := r.Percentile(0); got != 1 {
		t.Errorf("p0 = %v", got)
	}
	if got := r.Percentile(100); got != 5 {
		t.Errorf("p100 = %v", got)
	}
	if got := r.Stddev(); math.Abs(got-math.Sqrt(2)) > 1e-12 {
		t.Errorf("stddev = %v", got)
	}
}

func TestRecorderAddAfterSort(t *testing.T) {
	var r Recorder
	r.Add(5)
	_ = r.Min() // forces a sort
	r.Add(1)
	if r.Min() != 1 {
		t.Error("samples added after a sort must be observed")
	}
}

func TestSummaryShape(t *testing.T) {
	var r Recorder
	r.Add(2)
	s := r.Summary()
	for _, want := range []string{"mean=2.00", "p50=2.00", "n=1"} {
		if !strings.Contains(s, want) {
			t.Errorf("summary %q missing %q", s, want)
		}
	}
}

func TestTableAlignment(t *testing.T) {
	tb := NewTable("scenario", "clients", "avg_ms")
	tb.AddRow("DS500", 5, 52.25)
	tb.AddRow("SS", 1, 205.0)
	out := tb.String()
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 4 {
		t.Fatalf("lines = %d\n%s", len(lines), out)
	}
	if !strings.HasPrefix(lines[0], "scenario") || !strings.Contains(lines[0], "avg_ms") {
		t.Errorf("header = %q", lines[0])
	}
	if !strings.Contains(lines[1], "---") {
		t.Errorf("separator = %q", lines[1])
	}
	if !strings.Contains(lines[2], "52.25") {
		t.Errorf("row = %q", lines[2])
	}
	// Columns align: the "avg_ms" column starts at the same offset.
	off0 := strings.Index(lines[0], "avg_ms")
	off2 := strings.Index(lines[2], "52.25")
	if off0 != off2 {
		t.Errorf("column misaligned: %d vs %d\n%s", off0, off2, out)
	}
}

// TestQuickPercentileMonotone: percentiles never decrease in p and stay
// within [min, max].
func TestQuickPercentileMonotone(t *testing.T) {
	f := func(vals []float64, aSeed, bSeed uint8) bool {
		if len(vals) == 0 {
			return true
		}
		var r Recorder
		for _, v := range vals {
			if math.IsNaN(v) {
				return true
			}
			r.Add(v)
		}
		a := float64(aSeed) / 255 * 100
		b := float64(bSeed) / 255 * 100
		if a > b {
			a, b = b, a
		}
		pa, pb := r.Percentile(a), r.Percentile(b)
		return pa <= pb && pa >= r.Min() && pb <= r.Max()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

// TestQuickMeanWithinBounds: the mean lies within [min, max].
func TestQuickMeanWithinBounds(t *testing.T) {
	f := func(vals []float64) bool {
		var r Recorder
		for _, v := range vals {
			if math.IsNaN(v) || math.Abs(v) > 1e300 {
				return true // summation may overflow; out of scope
			}
			r.Add(v)
		}
		if r.Count() == 0 {
			return true
		}
		return r.Mean() >= r.Min()-1e-9 && r.Mean() <= r.Max()+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestCounterConcurrent(t *testing.T) {
	var c, misses Counter
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				c.Inc()
			}
		}()
	}
	wg.Wait()
	if c.Load() != 8000 {
		t.Errorf("Load = %d, want 8000", c.Load())
	}
	misses.Add(2000)
	if r := c.Rate(&misses); r != 0.8 {
		t.Errorf("Rate = %v, want 0.8", r)
	}
	var a, b Counter
	if r := a.Rate(&b); r != 0 {
		t.Errorf("empty Rate = %v, want 0", r)
	}
}

func TestPerSec(t *testing.T) {
	if got := PerSec(1000, time.Second); got != 1000 {
		t.Errorf("PerSec(1000, 1s) = %v", got)
	}
	if got := PerSec(500, 250*time.Millisecond); got != 2000 {
		t.Errorf("PerSec(500, 250ms) = %v", got)
	}
	if got := PerSec(42, 0); got != 0 {
		t.Errorf("PerSec with zero elapsed = %v, want 0", got)
	}
	if got := PerSec(42, -time.Second); got != 0 {
		t.Errorf("PerSec with negative elapsed = %v, want 0", got)
	}
}
