package metrics

import (
	"encoding/json"
	"fmt"
	"net/http"
	"sort"
	"strings"
	"sync"
)

// KV is one rendered metric: a name and an already-formatted value.
// Subsystems with their own stats structs (planner, transport, sim
// scheduler) expose them to the registry as snapshot funcs returning
// []KV, so the registry never needs to know their internals.
type KV struct {
	Name  string
	Value string
}

// KVf formats a metric value with fmt verbs — sugar for snapshot funcs.
func KVf(name, format string, args ...any) KV {
	return KV{Name: name, Value: fmt.Sprintf(format, args...)}
}

// Gauge is a concurrency-safe instantaneous value (queue depths,
// utilization ratios). The zero value is ready to use.
type Gauge struct{ v atomicFloat }

// Set stores v.
func (g *Gauge) Set(v float64) { g.v.store(v) }

// Add adjusts the gauge by d.
func (g *Gauge) Add(d float64) { g.v.add(d) }

// Load returns the current value.
func (g *Gauge) Load() float64 { return g.v.load() }

// Label is one key=value dimension on a metric series. Labeled series
// under one name form a family — the shape Prometheus exposition
// renders as `name{key="value"}`.
type Label struct {
	Key   string
	Value string
}

// Registry is the process-wide metrics namespace: named counters,
// gauges, and histograms owned by the registry, plus per-subsystem
// snapshot sections. One Render call (or one HTTP scrape) shows every
// subsystem in one format. Safe for concurrent use.
type Registry struct {
	mu         sync.Mutex
	sections   []namedSection
	counters   map[string]*counterEntry
	gauges     map[string]*Gauge
	histograms map[string]*Histogram
	histFuncs  map[string]*histFuncEntry
}

type namedSection struct {
	name string
	fn   func() []KV
}

// counterEntry is one counter series: its family name, label set, and
// the counter itself.
type counterEntry struct {
	name   string
	labels []Label
	c      *Counter
}

// histFuncEntry is one provider-backed histogram series: subsystems
// that keep their own sharded recorders register a snapshot func
// instead of observing into a registry-owned Histogram.
type histFuncEntry struct {
	name   string
	labels []Label
	fn     func() *Histogram
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters:   map[string]*counterEntry{},
		gauges:     map[string]*Gauge{},
		histograms: map[string]*Histogram{},
		histFuncs:  map[string]*histFuncEntry{},
	}
}

// seriesKey builds the map key for a name + label set. Labels are
// assumed already sorted by key (callers sort once at registration).
func seriesKey(name string, labels []Label) string {
	if len(labels) == 0 {
		return name
	}
	var b strings.Builder
	b.WriteString(name)
	b.WriteByte('{')
	for i, l := range labels {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(l.Key)
		b.WriteByte('=')
		b.WriteString(l.Value)
	}
	b.WriteByte('}')
	return b.String()
}

// sortLabels returns labels sorted by key (copied; the caller's slice
// is never mutated).
func sortLabels(labels []Label) []Label {
	if len(labels) == 0 {
		return nil
	}
	out := append([]Label(nil), labels...)
	sort.Slice(out, func(i, j int) bool { return out[i].Key < out[j].Key })
	return out
}

// DefaultRegistry is the process-wide registry the transports, planner,
// and cmds register into.
var DefaultRegistry = NewRegistry()

// RegisterSection attaches a named snapshot func; re-registering a name
// replaces the func in place (a subsystem restarting keeps its slot).
// Sections render in first-registration order, before owned metrics.
func (r *Registry) RegisterSection(name string, fn func() []KV) {
	r.mu.Lock()
	defer r.mu.Unlock()
	for i := range r.sections {
		if r.sections[i].name == name {
			r.sections[i].fn = fn
			return
		}
	}
	r.sections = append(r.sections, namedSection{name: name, fn: fn})
}

// UnregisterSection removes a named section (closed transports).
func (r *Registry) UnregisterSection(name string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	for i := range r.sections {
		if r.sections[i].name == name {
			r.sections = append(r.sections[:i], r.sections[i+1:]...)
			return
		}
	}
}

// Counter returns the named counter, creating it on first use. Names
// are "section.metric" ("wire.pool_hits"); the part before the first
// dot becomes the rendered section.
func (r *Registry) Counter(name string) *Counter {
	return r.CounterL(name)
}

// CounterL returns the counter series for name plus a label set,
// creating it on first use. Series with the same name and different
// labels render as one Prometheus family ("api.requests" with
// route/code labels).
func (r *Registry) CounterL(name string, labels ...Label) *Counter {
	labels = sortLabels(labels)
	key := seriesKey(name, labels)
	r.mu.Lock()
	defer r.mu.Unlock()
	e := r.counters[key]
	if e == nil {
		e = &counterEntry{name: name, labels: labels, c: &Counter{}}
		r.counters[key] = e
	}
	return e.c
}

// RegisterHistogramFunc attaches a provider-backed histogram series:
// fn is called at snapshot/scrape time and must return a merged
// point-in-time Histogram (e.g. ShardedHistogram.Snapshot). Re-
// registering a key replaces the provider.
func (r *Registry) RegisterHistogramFunc(name string, fn func() *Histogram, labels ...Label) {
	labels = sortLabels(labels)
	key := seriesKey(name, labels)
	r.mu.Lock()
	defer r.mu.Unlock()
	r.histFuncs[key] = &histFuncEntry{name: name, labels: labels, fn: fn}
}

// Gauge returns the named gauge, creating it on first use.
func (r *Registry) Gauge(name string) *Gauge {
	r.mu.Lock()
	defer r.mu.Unlock()
	g := r.gauges[name]
	if g == nil {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns the named histogram, creating it on first use.
// The transports record per-RPC-method latencies this way
// ("rpc.client.send").
func (r *Registry) Histogram(name string) *Histogram {
	r.mu.Lock()
	defer r.mu.Unlock()
	h := r.histograms[name]
	if h == nil {
		h = &Histogram{}
		r.histograms[name] = h
	}
	return h
}

// Section is one named group of rendered metrics.
type Section struct {
	Name  string
	Items []KV
}

// Snapshot renders every section and owned metric: registered sections
// in registration order, then owned counters/gauges/histograms grouped
// by name prefix (before the first dot) in alphabetical order.
// Histograms expand to count/mean/p50/p90/p99/max rows.
func (r *Registry) Snapshot() []Section {
	r.mu.Lock()
	sections := make([]namedSection, len(r.sections))
	copy(sections, r.sections)
	owned := map[string][]KV{}
	add := func(name string, labels []Label, kvs ...KV) {
		sec, rest := splitMetricName(name)
		rest = seriesKey(rest, labels)
		for _, kv := range kvs {
			if kv.Name == "" {
				kv.Name = rest
			} else {
				kv.Name = rest + "." + kv.Name
			}
			owned[sec] = append(owned[sec], kv)
		}
	}
	addHist := func(name string, labels []Label, h *Histogram) {
		add(name, labels,
			KVf("count", "%d", h.Count()),
			KVf("mean", "%.3f", h.Mean()),
			KVf("p50", "%.3f", h.Quantile(0.50)),
			KVf("p90", "%.3f", h.Quantile(0.90)),
			KVf("p99", "%.3f", h.Quantile(0.99)),
			KVf("max", "%.3f", h.Max()),
		)
	}
	for _, e := range r.counters {
		add(e.name, e.labels, KVf("", "%d", e.c.Load()))
	}
	for name, g := range r.gauges {
		add(name, nil, KVf("", "%.2f", g.Load()))
	}
	for name, h := range r.histograms {
		addHist(name, nil, h)
	}
	histFuncs := make([]*histFuncEntry, 0, len(r.histFuncs))
	for _, e := range r.histFuncs {
		histFuncs = append(histFuncs, e)
	}
	r.mu.Unlock()
	// Providers run outside the registry lock: a snapshot func may take
	// its subsystem's own locks, and must never deadlock against a
	// concurrent metric registration.
	for _, e := range histFuncs {
		addHist(e.name, e.labels, e.fn())
	}

	out := make([]Section, 0, len(sections)+len(owned))
	for _, s := range sections {
		out = append(out, Section{Name: s.name, Items: s.fn()})
	}
	names := make([]string, 0, len(owned))
	for name := range owned {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		items := owned[name]
		sort.Slice(items, func(i, j int) bool { return items[i].Name < items[j].Name })
		out = append(out, Section{Name: name, Items: items})
	}
	return out
}

// Render returns the whole registry as one aligned text table — the
// single stats format every cmd prints.
func (r *Registry) Render() string {
	t := NewTable("section", "metric", "value")
	for _, sec := range r.Snapshot() {
		for _, kv := range sec.Items {
			t.AddRow(sec.Name, kv.Name, kv.Value)
		}
	}
	return t.String()
}

// ServeHTTP exposes the registry as expvar-style JSON
// ({"section":{"metric":"value"}}) for scraping; values keep their
// rendered text form.
func (r *Registry) ServeHTTP(w http.ResponseWriter, _ *http.Request) {
	out := map[string]map[string]string{}
	for _, sec := range r.Snapshot() {
		m := out[sec.Name]
		if m == nil {
			m = map[string]string{}
			out[sec.Name] = m
		}
		for _, kv := range sec.Items {
			m[kv.Name] = kv.Value
		}
	}
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(out) //nolint:errcheck // scrape errors are the client's problem
}

// splitMetricName splits "section.metric" at the first dot; names with
// no dot land in the "misc" section.
func splitMetricName(name string) (section, metric string) {
	if i := strings.IndexByte(name, '.'); i >= 0 {
		return name[:i], name[i+1:]
	}
	return "misc", name
}
