// Package metrics collects latency samples and renders the fixed-width
// tables and series the experiment harness prints (the rows behind each
// reproduced figure).
package metrics

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"sync/atomic"
	"time"
)

// Counter is a concurrency-safe monotonic counter for data-plane
// events (frames, bytes, errors). The zero value is ready to use.
// Unlike Recorder, Counter is safe for concurrent use: the transports
// bump counters from many goroutines at once.
type Counter struct{ v atomic.Int64 }

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n.
func (c *Counter) Add(n int64) { c.v.Add(n) }

// Load returns the current value.
func (c *Counter) Load() int64 { return c.v.Load() }

// Rate returns this counter as a fraction of (this + other): pool hit
// rates, error rates. Returns 0 when both are zero.
func (c *Counter) Rate(other *Counter) float64 {
	a, b := c.Load(), other.Load()
	if a+b == 0 {
		return 0
	}
	return float64(a) / float64(a+b)
}

// PerSec converts a count over an elapsed wall-clock duration into a
// rate (events/sec throughput reporting); 0 when elapsed is not
// positive.
func PerSec(n int64, elapsed time.Duration) float64 {
	if elapsed <= 0 {
		return 0
	}
	return float64(n) / elapsed.Seconds()
}

// Recorder accumulates float64 samples (milliseconds by convention).
// The zero value is ready to use. Recorder is not safe for concurrent
// use; simulation code is single-threaded by construction and real-time
// callers should shard per goroutine.
type Recorder struct {
	samples []float64
	sorted  bool
}

// Add appends a sample.
func (r *Recorder) Add(v float64) {
	r.samples = append(r.samples, v)
	r.sorted = false
}

// Count returns the number of samples.
func (r *Recorder) Count() int { return len(r.samples) }

// Merge appends all of o's samples to r (o unchanged). This is the
// combine step for the documented "shard per goroutine" pattern: each
// worker records into its own Recorder and the fan-in merges the
// shards. Quantiles of the merge equal quantiles of a single Recorder
// fed the same samples in any order.
func (r *Recorder) Merge(o *Recorder) {
	if o == nil || len(o.samples) == 0 {
		return
	}
	r.samples = append(r.samples, o.samples...)
	r.sorted = false
}

// Mean returns the arithmetic mean (0 for no samples).
func (r *Recorder) Mean() float64 {
	if len(r.samples) == 0 {
		return 0
	}
	sum := 0.0
	for _, v := range r.samples {
		sum += v
	}
	return sum / float64(len(r.samples))
}

// Min returns the smallest sample (0 for no samples).
func (r *Recorder) Min() float64 {
	if len(r.samples) == 0 {
		return 0
	}
	r.sort()
	return r.samples[0]
}

// Max returns the largest sample (0 for no samples).
func (r *Recorder) Max() float64 {
	if len(r.samples) == 0 {
		return 0
	}
	r.sort()
	return r.samples[len(r.samples)-1]
}

// Percentile returns the p-th percentile (0 <= p <= 100) using
// nearest-rank; 0 for no samples.
func (r *Recorder) Percentile(p float64) float64 {
	if len(r.samples) == 0 {
		return 0
	}
	r.sort()
	if p <= 0 {
		return r.samples[0]
	}
	if p >= 100 {
		return r.samples[len(r.samples)-1]
	}
	rank := int(math.Ceil(p/100*float64(len(r.samples)))) - 1
	if rank < 0 {
		rank = 0
	}
	return r.samples[rank]
}

// Stddev returns the population standard deviation (0 for < 2 samples).
func (r *Recorder) Stddev() float64 {
	if len(r.samples) < 2 {
		return 0
	}
	mean := r.Mean()
	sum := 0.0
	for _, v := range r.samples {
		d := v - mean
		sum += d * d
	}
	return math.Sqrt(sum / float64(len(r.samples)))
}

func (r *Recorder) sort() {
	if !r.sorted {
		sort.Float64s(r.samples)
		r.sorted = true
	}
}

// Summary renders "mean=… p50=… p95=… max=… (n=…)".
func (r *Recorder) Summary() string {
	return fmt.Sprintf("mean=%.2f p50=%.2f p95=%.2f max=%.2f (n=%d)",
		r.Mean(), r.Percentile(50), r.Percentile(95), r.Max(), r.Count())
}

// Table renders aligned experiment tables.
type Table struct {
	header []string
	rows   [][]string
}

// NewTable starts a table with column headers.
func NewTable(header ...string) *Table { return &Table{header: header} }

// AddRow appends a row; cells are formatted with %v.
func (t *Table) AddRow(cells ...any) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = fmt.Sprintf("%.2f", v)
		default:
			row[i] = fmt.Sprint(v)
		}
	}
	t.rows = append(t.rows, row)
}

// String renders the table with aligned columns.
func (t *Table) String() string {
	widths := make([]int, len(t.header))
	for i, h := range t.header {
		widths[i] = len(h)
	}
	for _, row := range t.rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	var b strings.Builder
	writeRow := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			b.WriteString(cell)
			if i < len(cells)-1 {
				b.WriteString(strings.Repeat(" ", widths[i]-len(cell)))
			}
		}
		b.WriteByte('\n')
	}
	writeRow(t.header)
	sep := make([]string, len(t.header))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	writeRow(sep)
	for _, row := range t.rows {
		writeRow(row)
	}
	return b.String()
}
