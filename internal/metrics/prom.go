package metrics

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
)

// Prometheus text exposition (format 0.0.4) for the registry. The
// renderer maps registry names onto Prometheus families:
//
//   - counters:   partsvc_<name>_total        (TYPE counter)
//   - gauges:     partsvc_<name>              (TYPE gauge)
//   - histograms: partsvc_<name>_bucket{le=…} cumulative, plus _sum and
//     _count (TYPE histogram); only occupied buckets are emitted, the
//     mandatory +Inf bucket always
//   - sections:   any snapshot KV whose value parses as a plain float
//     becomes a gauge; formatted strings (percentages, lists) are
//     registry-render-only and skipped here
//
// Dots in registry names become underscores ("adapt.cutover_ms" →
// partsvc_adapt_cutover_ms); labeled series render label sets in
// canonical key order. Values keep Go's shortest float formatting,
// which the exposition grammar accepts.

// promNamePrefix namespaces every exported family.
const promNamePrefix = "partsvc_"

// WritePrometheus renders the whole registry in Prometheus text
// exposition format. Families are emitted in sorted name order so
// scrapes are diffable.
func (r *Registry) WritePrometheus(w io.Writer) error {
	r.mu.Lock()
	counters := make([]*counterEntry, 0, len(r.counters))
	for _, e := range r.counters {
		counters = append(counters, e)
	}
	gauges := make(map[string]float64, len(r.gauges))
	for name, g := range r.gauges {
		gauges[name] = g.Load()
	}
	hists := make([]promHist, 0, len(r.histograms)+len(r.histFuncs))
	for name, h := range r.histograms {
		hists = append(hists, promHist{name: name, h: h})
	}
	histFuncs := make([]*histFuncEntry, 0, len(r.histFuncs))
	for _, e := range r.histFuncs {
		histFuncs = append(histFuncs, e)
	}
	sections := make([]namedSection, len(r.sections))
	copy(sections, r.sections)
	r.mu.Unlock()
	for _, e := range histFuncs {
		hists = append(hists, promHist{name: e.name, labels: e.labels, h: e.fn()})
	}

	bw := bufio.NewWriter(w)

	// Counter families: group labeled series under one TYPE line.
	famC := map[string][]*counterEntry{}
	for _, e := range counters {
		famC[e.name] = append(famC[e.name], e)
	}
	for _, fam := range sortedKeys(famC) {
		name := promName(fam, "_total")
		fmt.Fprintf(bw, "# HELP %s Registry counter %s.\n", name, fam)
		fmt.Fprintf(bw, "# TYPE %s counter\n", name)
		series := famC[fam]
		sort.Slice(series, func(i, j int) bool {
			return seriesKey("", series[i].labels) < seriesKey("", series[j].labels)
		})
		for _, e := range series {
			fmt.Fprintf(bw, "%s%s %d\n", name, promLabels(e.labels, "", 0), e.c.Load())
		}
	}

	for _, fam := range sortedKeys(gauges) {
		name := promName(fam, "")
		fmt.Fprintf(bw, "# HELP %s Registry gauge %s.\n", name, fam)
		fmt.Fprintf(bw, "# TYPE %s gauge\n", name)
		fmt.Fprintf(bw, "%s %s\n", name, promFloat(gauges[fam]))
	}

	// Histogram families.
	famH := map[string][]promHist{}
	for _, ph := range hists {
		famH[ph.name] = append(famH[ph.name], ph)
	}
	for _, fam := range sortedKeys(famH) {
		name := promName(fam, "")
		fmt.Fprintf(bw, "# HELP %s Registry histogram %s (log-bucketed, milliseconds).\n", name, fam)
		fmt.Fprintf(bw, "# TYPE %s histogram\n", name)
		series := famH[fam]
		sort.Slice(series, func(i, j int) bool {
			return seriesKey("", series[i].labels) < seriesKey("", series[j].labels)
		})
		for _, ph := range series {
			writePromHistogram(bw, name, ph)
		}
	}

	// Section scalars: best-effort numeric exposure of the snapshot-func
	// sections (planner stats, transport stats, ...).
	// Families already emitted above: sections must not re-declare them
	// (duplicate families are a lint error, and typed metrics win).
	seen := map[string]bool{}
	for fam := range famC {
		seen[promName(fam, "_total")] = true
	}
	for fam := range gauges {
		seen[promName(fam, "")] = true
	}
	for fam := range famH {
		base := promName(fam, "")
		for _, sfx := range []string{"", "_bucket", "_sum", "_count"} {
			seen[base+sfx] = true
		}
	}
	for _, sec := range sections {
		for _, kv := range sec.fn() {
			v, err := strconv.ParseFloat(strings.TrimSpace(kv.Value), 64)
			if err != nil || math.IsInf(v, 0) || math.IsNaN(v) {
				continue
			}
			name := promName(sec.name+"."+kv.Name, "")
			if seen[name] {
				continue // duplicate family (re-registered section): first wins
			}
			seen[name] = true
			fmt.Fprintf(bw, "# TYPE %s gauge\n", name)
			fmt.Fprintf(bw, "%s %s\n", name, promFloat(v))
		}
	}
	return bw.Flush()
}

type promHist struct {
	name   string
	labels []Label
	h      *Histogram
}

// writePromHistogram renders one histogram series: cumulative occupied
// buckets, the +Inf bucket, sum, and count.
func writePromHistogram(w io.Writer, name string, ph promHist) {
	var cum uint64
	for _, b := range ph.h.Buckets() {
		if b.Count == 0 || math.IsInf(b.UpperBound, 1) {
			continue
		}
		cum += b.Count
		fmt.Fprintf(w, "%s_bucket%s %d\n", name, promLabels(ph.labels, "le", b.UpperBound), cum)
	}
	count := ph.h.Count()
	fmt.Fprintf(w, "%s_bucket%s %d\n", name, promLabels(ph.labels, "le", math.Inf(1)), count)
	fmt.Fprintf(w, "%s_sum%s %s\n", name, promLabels(ph.labels, "", 0), promFloat(ph.h.Sum()))
	fmt.Fprintf(w, "%s_count%s %d\n", name, promLabels(ph.labels, "", 0), count)
}

// promName sanitizes a registry name into a metric name:
// prefix + dots→underscores + invalid chars→underscores + suffix
// (suffix skipped when the name already ends with it).
func promName(name, suffix string) string {
	var b strings.Builder
	b.WriteString(promNamePrefix)
	for i := 0; i < len(name); i++ {
		c := name[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c == '_', c == ':':
			b.WriteByte(c)
		case c >= '0' && c <= '9' && i > 0:
			b.WriteByte(c)
		default:
			b.WriteByte('_')
		}
	}
	out := b.String()
	if suffix != "" && !strings.HasSuffix(out, suffix) {
		out += suffix
	}
	return out
}

// promLabels renders a label set (already sorted), optionally with a
// trailing le label for bucket lines. Returns "" for no labels.
func promLabels(labels []Label, leKey string, le float64) string {
	if len(labels) == 0 && leKey == "" {
		return ""
	}
	var b strings.Builder
	b.WriteByte('{')
	for i, l := range labels {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%s=%q", l.Key, l.Value)
	}
	if leKey != "" {
		if len(labels) > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%s=%q", leKey, promFloat(le))
	}
	b.WriteByte('}')
	return b.String()
}

// promFloat formats a float for the exposition grammar: shortest
// round-trip form, with +Inf/-Inf spelled the Prometheus way.
func promFloat(v float64) string {
	switch {
	case math.IsInf(v, 1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	case math.IsNaN(v):
		return "NaN"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

func sortedKeys[M ~map[string]V, V any](m M) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
