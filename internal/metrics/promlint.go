package metrics

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

// LintPrometheusText validates a Prometheus text-format exposition:
// line grammar (metric names, label syntax, float values), TYPE
// declarations preceding their series, no duplicate TYPE per family,
// and histogram invariants — every histogram family must expose a
// +Inf bucket whose cumulative count equals its _count series, with
// bucket counts non-decreasing in le order. It is the CI gate behind
// `promlint` and the format half of the exposition tests.
func LintPrometheusText(r io.Reader) error {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	l := &promLinter{
		types:   map[string]string{},
		series:  map[string]bool{},
		buckets: map[string][]promBucketSample{},
		counts:  map[string]float64{},
	}
	lineNo := 0
	for sc.Scan() {
		lineNo++
		if err := l.line(strings.TrimRight(sc.Text(), "\r")); err != nil {
			return fmt.Errorf("line %d: %w", lineNo, err)
		}
	}
	if err := sc.Err(); err != nil {
		return err
	}
	if lineNo == 0 {
		return fmt.Errorf("empty exposition")
	}
	return l.finish()
}

type promBucketSample struct {
	le  float64
	val float64
}

type promLinter struct {
	types   map[string]string             // family -> declared type
	series  map[string]bool               // exact series line key, for duplicates
	buckets map[string][]promBucketSample // histogram series key -> bucket samples
	counts  map[string]float64            // histogram series key -> _count value
}

var (
	promMetricRe = regexp.MustCompile(`^[a-zA-Z_:][a-zA-Z0-9_:]*$`)
	promLabelRe  = regexp.MustCompile(`^[a-zA-Z_][a-zA-Z0-9_]*$`)
)

func (l *promLinter) line(s string) error {
	if s == "" {
		return nil
	}
	if strings.HasPrefix(s, "#") {
		fields := strings.Fields(s)
		if len(fields) >= 2 && (fields[1] == "TYPE" || fields[1] == "HELP") {
			if len(fields) < 3 || !promMetricRe.MatchString(fields[2]) {
				return fmt.Errorf("malformed %s comment: %q", fields[1], s)
			}
			if fields[1] == "TYPE" {
				if len(fields) != 4 {
					return fmt.Errorf("malformed TYPE comment: %q", s)
				}
				switch fields[3] {
				case "counter", "gauge", "histogram", "summary", "untyped":
				default:
					return fmt.Errorf("unknown metric type %q", fields[3])
				}
				if _, dup := l.types[fields[2]]; dup {
					return fmt.Errorf("duplicate TYPE for family %s", fields[2])
				}
				l.types[fields[2]] = fields[3]
			}
		}
		return nil // other comments are free-form
	}

	name, labels, value, err := parsePromSample(s)
	if err != nil {
		return err
	}
	if l.series[name+labels] {
		return fmt.Errorf("duplicate series %s%s", name, labels)
	}
	l.series[name+labels] = true

	fam, sfx := promFamilyOf(name, l.types)
	if typ, ok := l.types[fam]; ok {
		if typ == "histogram" {
			key, le, hasLE, err := splitLE(fam, sfx, labels)
			if err != nil {
				return err
			}
			switch {
			case sfx == "_bucket":
				if !hasLE {
					return fmt.Errorf("histogram bucket without le label: %s%s", name, labels)
				}
				l.buckets[key] = append(l.buckets[key], promBucketSample{le: le, val: value})
			case sfx == "_count":
				l.counts[key] = value
			}
		} else if sfx == "_bucket" {
			return fmt.Errorf("series %s uses _bucket but family %s is %s", name, fam, typ)
		}
	}
	return nil
}

// parsePromSample validates one sample line and splits it into the
// metric name, the raw (normalized) label block, and the value.
func parsePromSample(s string) (name, labels string, value float64, err error) {
	rest := s
	brace := strings.IndexByte(rest, '{')
	if brace >= 0 {
		name = rest[:brace]
		end := strings.LastIndexByte(rest, '}')
		if end < brace {
			return "", "", 0, fmt.Errorf("unterminated label block: %q", s)
		}
		labels = rest[brace : end+1]
		rest = strings.TrimSpace(rest[end+1:])
		if err := lintLabelBlock(labels); err != nil {
			return "", "", 0, err
		}
	} else {
		sp := strings.IndexAny(rest, " \t")
		if sp < 0 {
			return "", "", 0, fmt.Errorf("sample without value: %q", s)
		}
		name = rest[:sp]
		rest = strings.TrimSpace(rest[sp:])
	}
	if !promMetricRe.MatchString(name) {
		return "", "", 0, fmt.Errorf("invalid metric name %q", name)
	}
	fields := strings.Fields(rest)
	if len(fields) < 1 || len(fields) > 2 {
		return "", "", 0, fmt.Errorf("want VALUE [TIMESTAMP] after %s, got %q", name, rest)
	}
	value, err = parsePromFloat(fields[0])
	if err != nil {
		return "", "", 0, fmt.Errorf("invalid value %q: %v", fields[0], err)
	}
	if len(fields) == 2 {
		if _, err := strconv.ParseInt(fields[1], 10, 64); err != nil {
			return "", "", 0, fmt.Errorf("invalid timestamp %q", fields[1])
		}
	}
	return name, labels, value, nil
}

// lintLabelBlock validates `{k="v",k2="v2"}` syntax.
func lintLabelBlock(block string) error {
	inner := strings.TrimSuffix(strings.TrimPrefix(block, "{"), "}")
	if inner == "" {
		return nil
	}
	for _, pair := range splitLabelPairs(inner) {
		k, v, ok := strings.Cut(pair, "=")
		if !ok {
			return fmt.Errorf("malformed label pair %q", pair)
		}
		if !promLabelRe.MatchString(k) {
			return fmt.Errorf("invalid label name %q", k)
		}
		if len(v) < 2 || v[0] != '"' || v[len(v)-1] != '"' {
			return fmt.Errorf("label value not quoted: %q", pair)
		}
		if _, err := strconv.Unquote(v); err != nil {
			return fmt.Errorf("bad label value escaping in %q: %v", pair, err)
		}
	}
	return nil
}

// splitLabelPairs splits on commas outside quotes.
func splitLabelPairs(s string) []string {
	var out []string
	depth := false
	start := 0
	for i := 0; i < len(s); i++ {
		switch s[i] {
		case '"':
			if i == 0 || s[i-1] != '\\' {
				depth = !depth
			}
		case ',':
			if !depth {
				out = append(out, s[start:i])
				start = i + 1
			}
		}
	}
	return append(out, s[start:])
}

// promFamilyOf strips a histogram/summary suffix when the base family
// has a TYPE declaration.
func promFamilyOf(name string, types map[string]string) (fam, suffix string) {
	for _, sfx := range []string{"_bucket", "_sum", "_count"} {
		if base, ok := strings.CutSuffix(name, sfx); ok {
			if t := types[base]; t == "histogram" || t == "summary" {
				return base, sfx
			}
		}
	}
	return name, ""
}

// splitLE extracts the le label (for buckets) and returns the series
// key with le removed, so bucket/_sum/_count series of one label set
// group together.
func splitLE(fam, sfx, labels string) (key string, le float64, hasLE bool, err error) {
	inner := strings.TrimSuffix(strings.TrimPrefix(labels, "{"), "}")
	var kept []string
	for _, pair := range splitLabelPairs(inner) {
		if pair == "" {
			continue
		}
		k, v, _ := strings.Cut(pair, "=")
		if k == "le" && sfx == "_bucket" {
			unq, uerr := strconv.Unquote(v)
			if uerr != nil {
				return "", 0, false, fmt.Errorf("bad le value %q", v)
			}
			le, err = parsePromFloat(unq)
			if err != nil {
				return "", 0, false, fmt.Errorf("bad le value %q", unq)
			}
			hasLE = true
			continue
		}
		kept = append(kept, pair)
	}
	sort.Strings(kept)
	return fam + "{" + strings.Join(kept, ",") + "}", le, hasLE, nil
}

func parsePromFloat(s string) (float64, error) {
	switch s {
	case "+Inf", "Inf":
		return math.Inf(1), nil
	case "-Inf":
		return math.Inf(-1), nil
	case "NaN":
		return math.NaN(), nil
	}
	return strconv.ParseFloat(s, 64)
}

// finish runs the cross-line histogram checks.
func (l *promLinter) finish() error {
	for key, samples := range l.buckets {
		sort.Slice(samples, func(i, j int) bool { return samples[i].le < samples[j].le })
		last := samples[len(samples)-1]
		if !math.IsInf(last.le, 1) {
			return fmt.Errorf("histogram %s has no +Inf bucket", key)
		}
		for i := 1; i < len(samples); i++ {
			if samples[i].val < samples[i-1].val {
				return fmt.Errorf("histogram %s buckets not cumulative at le=%s",
					key, promFloat(samples[i].le))
			}
		}
		if count, ok := l.counts[key]; ok && count != last.val {
			return fmt.Errorf("histogram %s: +Inf bucket %v != _count %v", key, last.val, count)
		}
	}
	return nil
}
