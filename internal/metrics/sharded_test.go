package metrics

import (
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
)

// TestShardedCounterExact asserts the merge is exact under heavy
// concurrent mixed adds: sharding may spread the value, never lose it.
func TestShardedCounterExact(t *testing.T) {
	var c ShardedCounter
	const goroutines = 16
	const perG = 10000
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				switch i % 3 {
				case 0:
					c.Inc()
				case 1:
					c.Add(3)
				case 2:
					c.Add(-2)
				}
			}
		}(g)
	}
	wg.Wait()
	// Mirror the loop exactly: i%3 buckets are not equal thirds.
	var perGoroutine int64
	for i := 0; i < perG; i++ {
		switch i % 3 {
		case 0:
			perGoroutine++
		case 1:
			perGoroutine += 3
		case 2:
			perGoroutine -= 2
		}
	}
	want := int64(goroutines) * perGoroutine
	if got := c.Load(); got != want {
		t.Fatalf("Load() = %d, want %d", got, want)
	}
}

// TestShardedCounterZeroValue asserts the zero value is usable, like
// the atomics it replaces.
func TestShardedCounterZeroValue(t *testing.T) {
	var c ShardedCounter
	if c.Load() != 0 {
		t.Fatal("zero value not zero")
	}
	c.Add(5)
	c.Add(-5)
	if c.Load() != 0 {
		t.Fatal("inc/dec did not cancel")
	}
}

// TestShardedHistogramMergeExact asserts the merged snapshot holds
// every observation from every shard.
func TestShardedHistogramMergeExact(t *testing.T) {
	var h ShardedHistogram
	const goroutines = 8
	const perG = 5000
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				h.Observe(float64(i % 100))
			}
		}(g)
	}
	wg.Wait()
	if got, want := h.Count(), uint64(goroutines*perG); got != want {
		t.Fatalf("Count() = %d, want %d", got, want)
	}
	snap := h.Snapshot()
	if got, want := snap.Count(), uint64(goroutines*perG); got != want {
		t.Fatalf("Snapshot().Count() = %d, want %d", got, want)
	}
	// An exact 0 sample reads back as the smallest subnormal (the
	// histogram's "no sample" sentinel nudge), so bound it instead of
	// comparing exactly.
	if min, max := snap.Min(), snap.Max(); min > 1e-300 || max != 99 {
		t.Fatalf("min=%v max=%v, want ~0 and 99", min, max)
	}
	if p50 := snap.Quantile(0.5); p50 < 30 || p50 > 70 {
		t.Fatalf("p50 = %v for uniform 0..99, want near 50", p50)
	}
}

// BenchmarkShardedCounterParallel measures the contended add path the
// sharding exists for; compare with BenchmarkAtomicCounterParallel.
func BenchmarkShardedCounterParallel(b *testing.B) {
	var c ShardedCounter
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			c.Inc()
		}
	})
	if c.Load() != int64(b.N) {
		b.Fatal("lost updates")
	}
}

// BenchmarkAtomicCounterParallel is the single-cache-line baseline.
func BenchmarkAtomicCounterParallel(b *testing.B) {
	var v atomic.Int64
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			v.Add(1)
		}
	})
}

// TestProcHintStable sanity-checks the procPin-based shard hint: it
// must return a value in range on every call and not panic off the
// goroutine that first touched it.
func TestProcHintStable(t *testing.T) {
	var wg sync.WaitGroup
	for g := 0; g < 2*runtime.NumCPU(); g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				if p := procHint(); p > 1<<20 {
					t.Errorf("procHint() = %d, implausible", p)
					return
				}
			}
		}()
	}
	wg.Wait()
}
