package metrics

import (
	"fmt"
	"math"
	"sync/atomic"
)

// Histogram is a fixed-memory, concurrency-safe latency histogram with
// logarithmic buckets: 8 sub-buckets per power of two over 2^-20 ..
// 2^22 milliseconds, so any quantile is exact to within one bucket's
// relative width (2^(1/8)-1 ≈ 9%). Unlike Recorder it never grows with
// the sample count, and Observe is lock-free — the replacement for
// ad-hoc sample slices on concurrent paths (per-RPC-method latencies).
// The zero value is ready to use. Histograms with the same bucket
// layout (all of them) merge losslessly.
type Histogram struct {
	counts [histBuckets]atomic.Uint64
	count  atomic.Uint64
	sum    atomicFloat
	min    atomicFloat // valid only when count > 0
	max    atomicFloat
}

const (
	histMinExp    = -20 // values <= 2^-20 ms land in bucket 0
	histMaxExp    = 22  // values >= 2^22 ms land in the top bucket
	histSubOctave = 8   // sub-buckets per power of two
	histBuckets   = (histMaxExp-histMinExp)*histSubOctave + 2
)

// bucketOf maps a sample to its bucket index.
func bucketOf(v float64) int {
	if v <= 0 || math.IsNaN(v) {
		return 0
	}
	idx := int(math.Floor((math.Log2(v)-histMinExp)*histSubOctave)) + 1
	if idx < 0 {
		return 0
	}
	if idx >= histBuckets {
		return histBuckets - 1
	}
	return idx
}

// bucketValue returns the representative value of a bucket: the
// geometric midpoint of its bounds (its lower bound for the underflow
// and overflow buckets).
func bucketValue(idx int) float64 {
	if idx <= 0 {
		return 0
	}
	if idx >= histBuckets-1 {
		return math.Exp2(histMaxExp)
	}
	lo := float64(idx-1)/histSubOctave + histMinExp
	hi := float64(idx)/histSubOctave + histMinExp
	return math.Exp2((lo + hi) / 2)
}

// Observe records one sample (milliseconds by convention). Safe for
// concurrent use.
func (h *Histogram) Observe(v float64) {
	h.counts[bucketOf(v)].Add(1)
	h.count.Add(1)
	h.sum.add(v)
	h.min.storeMin(v)
	h.max.storeMax(v)
}

// Count returns the number of samples.
func (h *Histogram) Count() uint64 { return h.count.Load() }

// Sum returns the sum of all samples.
func (h *Histogram) Sum() float64 { return h.sum.load() }

// Mean returns the arithmetic mean (0 for no samples).
func (h *Histogram) Mean() float64 {
	n := h.count.Load()
	if n == 0 {
		return 0
	}
	return h.sum.load() / float64(n)
}

// Min and Max return the exact extreme samples (0 for no samples).
func (h *Histogram) Min() float64 {
	if h.count.Load() == 0 {
		return 0
	}
	return h.min.load()
}

// Max returns the largest sample (0 for no samples).
func (h *Histogram) Max() float64 {
	if h.count.Load() == 0 {
		return 0
	}
	return h.max.load()
}

// Quantile returns the value at quantile q (0 <= q <= 1) to within one
// bucket's relative error; 0 for no samples. Concurrent Observes may
// shift the answer by the in-flight samples, never corrupt it.
func (h *Histogram) Quantile(q float64) float64 {
	total := h.count.Load()
	if total == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := uint64(math.Ceil(q * float64(total)))
	if rank == 0 {
		rank = 1
	}
	var seen uint64
	for i := 0; i < histBuckets; i++ {
		seen += h.counts[i].Load()
		if seen >= rank {
			v := bucketValue(i)
			// Clamp to the observed extremes: the top and bottom
			// occupied buckets are wider than the data they hold.
			if mx := h.Max(); v > mx {
				v = mx
			}
			if mn := h.Min(); v < mn {
				v = mn
			}
			return v
		}
	}
	return h.Max()
}

// BucketCount is one histogram bucket in exposition form: the
// inclusive upper bound of the bucket and the number of samples that
// landed in it (non-cumulative).
type BucketCount struct {
	UpperBound float64 // +Inf for the overflow bucket
	Count      uint64
}

// Buckets returns every bucket's upper bound and sample count, low to
// high; the final bound is +Inf. Counts are non-cumulative — renderers
// producing Prometheus-style cumulative buckets sum as they go.
// Concurrent Observes may be torn across buckets (the per-bucket adds
// are independent atomics), never corrupted.
func (h *Histogram) Buckets() []BucketCount {
	out := make([]BucketCount, histBuckets)
	for i := 0; i < histBuckets; i++ {
		ub := math.Inf(1)
		if i < histBuckets-1 {
			ub = math.Exp2(float64(i)/histSubOctave + histMinExp)
		}
		out[i] = BucketCount{UpperBound: ub, Count: h.counts[i].Load()}
	}
	return out
}

// Merge folds o's samples into h (o unchanged). Merging is
// order-independent: quantiles of the merge equal quantiles of the
// combined sample multiset to within bucket resolution.
func (h *Histogram) Merge(o *Histogram) {
	if o == nil {
		return
	}
	for i := 0; i < histBuckets; i++ {
		if n := o.counts[i].Load(); n > 0 {
			h.counts[i].Add(n)
		}
	}
	n := o.count.Load()
	if n == 0 {
		return
	}
	h.count.Add(n)
	h.sum.add(o.sum.load())
	h.min.storeMin(o.min.load())
	h.max.storeMax(o.max.load())
}

// Summary renders "mean=… p50=… p90=… p99=… max=… (n=…)".
func (h *Histogram) Summary() string {
	return fmt.Sprintf("mean=%.2f p50=%.2f p90=%.2f p99=%.2f max=%.2f (n=%d)",
		h.Mean(), h.Quantile(0.50), h.Quantile(0.90), h.Quantile(0.99), h.Max(), h.Count())
}

// atomicFloat is a float64 updated with CAS loops (sum, min, max
// accumulators shared across goroutines).
type atomicFloat struct{ bits atomic.Uint64 }

func (a *atomicFloat) load() float64 { return math.Float64frombits(a.bits.Load()) }

func (a *atomicFloat) store(v float64) { a.bits.Store(math.Float64bits(v)) }

func (a *atomicFloat) add(v float64) {
	for {
		old := a.bits.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if a.bits.CompareAndSwap(old, next) {
			return
		}
	}
}

// storeMin lowers the value to v if v is smaller. The zero bit pattern
// marks "no sample yet"; an exact +0.0 sample is nudged to the
// smallest subnormal so it cannot be mistaken for that sentinel (the
// distortion is far below bucket resolution).
func (a *atomicFloat) storeMin(v float64) {
	if v == 0 {
		v = math.SmallestNonzeroFloat64
	}
	for {
		old := a.bits.Load()
		if old != 0 && math.Float64frombits(old) <= v {
			return
		}
		if a.bits.CompareAndSwap(old, math.Float64bits(v)) {
			return
		}
	}
}

// storeMax raises the value to v if v is larger (same sentinel rule as
// storeMin).
func (a *atomicFloat) storeMax(v float64) {
	if v == 0 {
		v = math.SmallestNonzeroFloat64
	}
	for {
		old := a.bits.Load()
		if old != 0 && math.Float64frombits(old) >= v {
			return
		}
		if a.bits.CompareAndSwap(old, math.Float64bits(v)) {
			return
		}
	}
}
