package smock_test

import (
	"strings"
	"testing"

	"partsvc/internal/mail"
	"partsvc/internal/netmodel"
	"partsvc/internal/planner"
	"partsvc/internal/property"
	"partsvc/internal/spec"
	"partsvc/internal/topology"
)

// requiresOf adapts a service spec to the engine's wiring callback.
func requiresOf(svc *spec.Service) func(string) (string, bool) {
	return func(component string) (string, bool) {
		comp, ok := svc.Component(component)
		if !ok || len(comp.Requires) == 0 {
			return "", false
		}
		return comp.Requires[0].Name, true
	}
}

// TestRedeployAfterLinkSecured runs the paper's Section 6 adaptation
// end to end on the live runtime: the NY-SD link becomes secure, the
// planner replans without the encryptor tunnel, the engine replaces the
// stale-wired view (state recovered through the coherence directory),
// and mail keeps flowing.
func TestRedeployAfterLinkSecured(t *testing.T) {
	w := newWorld(t)
	svc := spec.MailService()

	// Initial SD deployment and some traffic through it.
	proxy := w.proxyFor(t, topology.SDClient, "Alice")
	defer proxy.Close()
	alice := mail.NewClient("Alice", w.keys, mail.NewRemote(proxy))
	if _, err := alice.Send("Bob", "before", []byte("one"), 2); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(proxy.Deployment, "Encryptor@sd-2") {
		t.Fatalf("initial deployment must use the tunnel: %s", proxy.Deployment)
	}

	// The environment changes: the inter-site link becomes secure.
	pl := w.gs.Planner()
	link, _ := pl.Net.Link(topology.NYServer, topology.SDGateway)
	link.Secure = true
	link.Props["Confidentiality"] = property.Bool(true)

	// Replan and apply. The old deployment object is reconstructed from
	// the planner's registered instances via a fresh plan on the old
	// network state; here we simply replan against the request.
	req := planner.Request{
		Interface: spec.IfaceClient, ClientNode: topology.SDClient,
		User: "Alice", RateRPS: 50,
	}
	diff, err := pl.Replan(nil, req)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range diff.New.Placements {
		if p.Component == spec.CompEncryptor || p.Component == spec.CompDecryptor {
			t.Fatalf("secured link must drop the tunnel: %s", diff.New)
		}
	}
	addr, err := w.engine.Apply(diff, requiresOf(svc))
	if err != nil {
		t.Fatal(err)
	}

	// Traffic through the adapted head still works, and the view's
	// replicated state survived the rewiring replacement.
	ep, err := w.tr.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer ep.Close()
	alice2 := mail.NewClient("Alice", w.keys, mail.NewRemote(ep))
	if _, err := alice2.Send("Bob", "after", []byte("two"), 2); err != nil {
		t.Fatal(err)
	}
	if got := w.primary.Store().InboxCount("Bob"); got != 2 {
		t.Errorf("primary inbox = %d, want 2 (state preserved across redeployment)", got)
	}
	// Alice can still read everything through the new path.
	msgs, err := alice2.Receive()
	if err != nil {
		t.Fatal(err)
	}
	_ = msgs // Alice has no inbox traffic; the call exercising the path suffices.
}

// TestRedeployAfterTrustDrop: San Diego loses trust; the evicted view
// is torn down and the replanned chain avoids SD caching entirely.
func TestRedeployAfterTrustDrop(t *testing.T) {
	w := newWorld(t)
	svc := spec.MailService()
	proxy := w.proxyFor(t, topology.SDClient, "Alice")
	defer proxy.Close()
	alice := mail.NewClient("Alice", w.keys, mail.NewRemote(proxy))
	if _, err := alice.Send("Bob", "before", []byte("one"), 2); err != nil {
		t.Fatal(err)
	}

	pl := w.gs.Planner()
	for _, id := range []netmodel.NodeID{topology.SDClient, topology.SDGateway} {
		n, _ := pl.Net.Node(id)
		n.Props["TrustLevel"] = property.Int(1)
	}
	req := planner.Request{
		Interface: spec.IfaceClient, ClientNode: topology.SDClient,
		User: "Alice", RateRPS: 50,
	}
	diff, err := pl.Replan(nil, req)
	if err != nil {
		t.Fatal(err)
	}
	evictedView := false
	for _, p := range diff.Evicted {
		if p.Component == spec.CompViewMailServer {
			evictedView = true
		}
	}
	if !evictedView {
		t.Fatalf("the SD view must be evicted: %v", diff.Evicted)
	}
	before := w.engine.InstanceCount()
	addr, err := w.engine.Apply(diff, requiresOf(svc))
	if err != nil {
		t.Fatal(err)
	}
	if w.engine.InstanceCount() >= before+len(diff.Install) {
		// Eviction removed at least the view instance.
		t.Errorf("eviction must shrink the instance set: %d -> %d (+%d installs)",
			before, w.engine.InstanceCount(), len(diff.Install))
	}
	ep, err := w.tr.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer ep.Close()
	alice2 := mail.NewClient("Alice", w.keys, mail.NewRemote(ep))
	if _, err := alice2.Send("Bob", "after", []byte("two"), 3); err != nil {
		t.Fatal(err)
	}
	if got := w.primary.Store().InboxCount("Bob"); got != 2 {
		t.Errorf("primary inbox = %d, want 2", got)
	}
}
