package smock

import (
	"context"
	"fmt"
	"strconv"
	"strings"
	"sync"

	"partsvc/internal/netmodel"
	"partsvc/internal/planner"
	"partsvc/internal/spec"
	"partsvc/internal/trace"
	"partsvc/internal/transport"
	"partsvc/internal/wire"
)

// AccessMethod is the generic server's access request method.
const AccessMethod = "access"

// GenericServer coordinates one service: it receives a client's first
// request with supporting credentials (Figure 1, step 3), consults the
// planner (step 4), drives the deployment engine (step 5), and returns
// the head component's address for the proxy to rebind to.
type GenericServer struct {
	svc    *spec.Service
	engine *Engine

	mu sync.Mutex // the planner is not concurrent-safe
	pl *planner.Planner
}

// NewGenericServer binds a specification, planner, and engine.
func NewGenericServer(svc *spec.Service, pl *planner.Planner, engine *Engine) *GenericServer {
	return &GenericServer{svc: svc, pl: pl, engine: engine}
}

// Planner exposes the planner (e.g. to pre-register primaries).
func (g *GenericServer) Planner() *planner.Planner { return g.pl }

// Access plans and deploys for one client request, returning the head
// component address and the deployment.
func (g *GenericServer) Access(req planner.Request) (string, *planner.Deployment, error) {
	g.mu.Lock()
	defer g.mu.Unlock()
	dep, err := g.pl.PlanVia(g.pl.Preferred(), req)
	if err != nil {
		return "", nil, err
	}
	addr, err := g.engine.Execute(dep, g.Requires)
	if err != nil {
		return "", nil, err
	}
	// Future requests may reuse and link to what was just deployed.
	g.pl.AddExisting(dep.Placements...)
	return addr, dep, nil
}

// PlanOnly runs the planner for one request without deploying anything
// — a dry run for the operational API's /v1/plan endpoint. The result
// is not registered as existing, so a later Access is unaffected.
func (g *GenericServer) PlanOnly(req planner.Request) (*planner.Deployment, error) {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.pl.PlanVia(g.pl.Preferred(), req)
}

// PlanOnlyVia is PlanOnly through an explicitly selected planner
// backend, for API callers that override the configured default.
func (g *GenericServer) PlanOnlyVia(req planner.Request, b planner.Backend) (*planner.Deployment, error) {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.pl.PlanVia(b, req)
}

// Requires resolves a component's required interface name — the
// engine's wiring callback. The specification is immutable, so no lock
// is needed.
func (g *GenericServer) Requires(component string) (string, bool) {
	comp, ok := g.svc.Component(component)
	if !ok || len(comp.Requires) == 0 {
		return "", false
	}
	return comp.Requires[0].Name, true
}

// Replan runs the planner's revalidate-and-replan under the server's
// planner lock, so an adaptation controller and client access requests
// serialize on the same planner state.
//
// Eviction can orphan live instances: still valid where they run, but
// wired (transitively) through an evicted provider, so every request
// they forward hits a dead address. The planner must not anchor a new
// chain at an orphan; when the engine reports any, they are dropped
// from the reuse set and the plan is recomputed so the whole chain
// downstream of the break is planned — and therefore re-wired —
// afresh. Orphans are not torn down here: the engine replaces same-key
// instances in place (carrying their state), and any orphan the new
// plan abandons lands in Remove for the normal drain-then-discard
// path.
//
// The no-op case goes through the planner's rewire check
// (ReplanRewire): a network change that invalidates nothing may still
// have moved the latency optimum away from wiring the anchor cut
// keeps frozen (a degraded interior link); the session is then
// re-wired to the freshly optimal chain.
func (g *GenericServer) Replan(old *planner.Deployment, req planner.Request) (*planner.Diff, error) {
	g.mu.Lock()
	defer g.mu.Unlock()
	diff, err := g.pl.ReplanRewire(old, req)
	if err != nil {
		return nil, err
	}
	if orphans := g.engine.OrphanedBy(diff.Evicted); len(orphans) > 0 {
		g.pl.DropExistingByKey(orphans...)
		diff2, err := g.pl.Replan(old, req)
		if err != nil {
			return nil, err
		}
		diff2.Evicted = append(diff.Evicted, diff2.Evicted...)
		return diff2, nil
	}
	return diff, nil
}

// RepairReplan is Replan through the solver backend's incremental
// repair path: ch names the network elements a monitoring event
// touched, so placements away from the change keep their assignments
// and only invalidated domains are re-searched. Falls back to a full
// replan (inside the planner) when repair is infeasible or the planner
// is not solver-backed. Orphan handling mirrors Replan.
func (g *GenericServer) RepairReplan(old *planner.Deployment, req planner.Request, ch *planner.ChangedSet) (*planner.Diff, error) {
	g.mu.Lock()
	defer g.mu.Unlock()
	diff, err := g.pl.RepairReplan(old, req, ch)
	if err != nil {
		return nil, err
	}
	if orphans := g.engine.OrphanedBy(diff.Evicted); len(orphans) > 0 {
		g.pl.DropExistingByKey(orphans...)
		diff2, err := g.pl.Replan(old, req)
		if err != nil {
			return nil, err
		}
		diff2.Evicted = append(diff.Evicted, diff2.Evicted...)
		return diff2, nil
	}
	return diff, nil
}

// NoteDeployed registers an adaptation's fresh placements for reuse by
// future access requests.
func (g *GenericServer) NoteDeployed(dep *planner.Deployment) {
	g.mu.Lock()
	defer g.mu.Unlock()
	g.pl.AddExisting(dep.Placements...)
}

// Forget drops torn-down placements from the planner's reuse set.
func (g *GenericServer) Forget(placements ...planner.Placement) {
	g.mu.Lock()
	defer g.mu.Unlock()
	g.pl.DropExisting(placements...)
}

// Handler serves Access over a transport. Request meta: interface,
// node, user, rate. Response meta: addr, deployment.
func (g *GenericServer) Handler() transport.Handler {
	return transport.HandlerFunc(func(m *wire.Message) *wire.Message {
		if m.Method != AccessMethod {
			return transport.ErrorResponse(m, "generic server: unknown method %q", m.Method)
		}
		rate, _ := strconv.ParseFloat(m.Meta["rate"], 64)
		// The planner records requests beyond this call, and transport
		// requests are zero-copy (meta strings alias a slab released
		// after the response) — the Request must own its strings.
		req := planner.Request{
			Interface:  strings.Clone(m.Meta["interface"]),
			ClientNode: netmodel.NodeID(strings.Clone(m.Meta["node"])),
			User:       strings.Clone(m.Meta["user"]),
			RateRPS:    rate,
		}
		_, span := trace.StartRemote(context.Background(),
			trace.SpanContext{TraceID: m.TraceID, SpanID: m.SpanID}, "smock.access")
		if span != nil {
			span.SetAttr("interface", req.Interface)
		}
		addr, dep, err := g.Access(req)
		span.End()
		if err != nil {
			return transport.ErrorResponse(m, "%v", err)
		}
		return &wire.Message{
			Kind: wire.KindResponse, ID: m.ID,
			Meta: map[string]string{"addr": addr, "deployment": dep.String()},
		}
	})
}

// GenericProxy is the client-side generic proxy: downloaded from the
// lookup service, it forwards the first request to the generic server
// and then "replaces itself with a service-specific proxy" — an
// endpoint bound directly to the deployed head component.
type GenericProxy struct {
	tr        transport.Transport
	serverEp  transport.Endpoint
	Interface string
	Node      netmodel.NodeID
	User      string
	RateRPS   float64

	mu         sync.Mutex
	bound      transport.Endpoint
	Deployment string
}

// NewGenericProxy dials the generic server found in the lookup service.
func NewGenericProxy(tr transport.Transport, lookup *Lookup, service string, attrs map[string]string) (*GenericProxy, error) {
	entries := lookup.Find(service, attrs)
	if len(entries) == 0 {
		return nil, fmt.Errorf("smock: no service %q in lookup", service)
	}
	ep, err := tr.Dial(entries[0].ServerAddr)
	if err != nil {
		return nil, err
	}
	return &GenericProxy{tr: tr, serverEp: ep}, nil
}

// ensureBound performs the one-time deployment handshake.
func (p *GenericProxy) ensureBound() (transport.Endpoint, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.bound != nil {
		return p.bound, nil
	}
	resp, err := p.serverEp.Call(&wire.Message{
		Kind: wire.KindRequest, Method: AccessMethod,
		Meta: map[string]string{
			"interface": p.Interface,
			"node":      string(p.Node),
			"user":      p.User,
			"rate":      strconv.FormatFloat(p.RateRPS, 'f', -1, 64),
		},
	})
	if err != nil {
		return nil, err
	}
	if err := transport.AsError(resp); err != nil {
		return nil, err
	}
	p.Deployment = resp.Meta["deployment"]
	ep, err := p.tr.Dial(resp.Meta["addr"])
	if err != nil {
		return nil, err
	}
	p.bound = ep
	return ep, nil
}

// Call forwards a message to the deployed head component, deploying on
// first use.
func (p *GenericProxy) Call(m *wire.Message) (*wire.Message, error) {
	return p.CallContext(context.Background(), m)
}

// CallContext is Call under a "smock.proxy" span, so the one-time
// deployment handshake shows up in the first request's trace.
func (p *GenericProxy) CallContext(ctx context.Context, m *wire.Message) (*wire.Message, error) {
	ctx, span := trace.Start(ctx, "smock.proxy")
	ep, err := p.ensureBound()
	if err != nil {
		span.End()
		return nil, fmt.Errorf("smock: proxy binding: %w", err)
	}
	resp, err := transport.Call(ctx, ep, m)
	span.End()
	return resp, err
}

// Close releases both the server handshake endpoint and the bound
// endpoint.
func (p *GenericProxy) Close() error {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.bound != nil {
		p.bound.Close()
	}
	return p.serverEp.Close()
}
