package smock

import (
	"fmt"
	"sync"

	"partsvc/internal/netmodel"
	"partsvc/internal/property"
	"partsvc/internal/transport"
	"partsvc/internal/wire"
)

// InstallOrder tells a node wrapper to instantiate a component and
// connect it to its providers.
type InstallOrder struct {
	// Component names the factory to activate.
	Component string
	// InstanceID names the instance.
	InstanceID string
	// Config carries factored property bindings.
	Config property.Set
	// State is the optional serialized state snapshot.
	State []byte
	// Upstreams maps required interface names to provider addresses.
	Upstreams map[string]string
	// UpstreamSecrets maps required interface names to edge secrets.
	UpstreamSecrets map[string][]byte
	// ServeSecret is the secret shared with this instance's client.
	ServeSecret []byte
}

// NodeWrapper is the per-node agent that installs, connects, and hosts
// component instances ("wrappers running on each node facilitate remote
// installation"). It serves installed components on the node's
// transport and accepts remote install orders as KindInstall messages.
type NodeWrapper struct {
	node netmodel.NodeID
	tr   transport.Transport
	reg  *Registry
	clk  transport.Clock

	mu          sync.Mutex
	listeners   map[string]transport.Listener // instanceID -> listener
	addrs       map[string]string             // instanceID -> address
	control     transport.Listener            // ServeControl listener, if any
	controlAddr string                        // survives Close: probes must keep targeting a crashed node
}

// NewNodeWrapper returns a wrapper for one node.
func NewNodeWrapper(node netmodel.NodeID, tr transport.Transport, reg *Registry, clk transport.Clock) *NodeWrapper {
	return &NodeWrapper{
		node: node, tr: tr, reg: reg, clk: clk,
		listeners: map[string]transport.Listener{},
		addrs:     map[string]string{},
	}
}

// Node returns the wrapper's node.
func (w *NodeWrapper) Node() netmodel.NodeID { return w.node }

// Install activates a component per the order: it dials the upstream
// providers, activates the factory, and serves the instance's handler,
// returning the address clients should dial.
func (w *NodeWrapper) Install(order InstallOrder) (string, error) {
	ctx := &ActivationContext{
		InstanceID:      order.InstanceID,
		Node:            w.node,
		Config:          order.Config,
		State:           order.State,
		Upstreams:       map[string]transport.Endpoint{},
		UpstreamSecrets: order.UpstreamSecrets,
		ServeSecret:     order.ServeSecret,
		Clock:           w.clk,
	}
	for iface, addr := range order.Upstreams {
		ep, err := w.tr.Dial(addr)
		if err != nil {
			return "", fmt.Errorf("smock: wrapper %s: dialing %s provider %s: %w", w.node, iface, addr, err)
		}
		ctx.Upstreams[iface] = ep
	}
	h, err := w.reg.Activate(order.Component, ctx)
	if err != nil {
		return "", err
	}
	ln, err := w.tr.Serve("", h)
	if err != nil {
		return "", fmt.Errorf("smock: wrapper %s: serving %s: %w", w.node, order.InstanceID, err)
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	if _, dup := w.listeners[order.InstanceID]; dup {
		ln.Close()
		return "", fmt.Errorf("smock: wrapper %s: instance %q already installed", w.node, order.InstanceID)
	}
	w.listeners[order.InstanceID] = ln
	w.addrs[order.InstanceID] = ln.Addr()
	return ln.Addr(), nil
}

// AddrOf returns the serving address of an installed instance.
func (w *NodeWrapper) AddrOf(instanceID string) (string, bool) {
	w.mu.Lock()
	defer w.mu.Unlock()
	addr, ok := w.addrs[instanceID]
	return addr, ok
}

// Instances returns the number of hosted instances.
func (w *NodeWrapper) Instances() int {
	w.mu.Lock()
	defer w.mu.Unlock()
	return len(w.listeners)
}

// Uninstall stops serving an instance.
func (w *NodeWrapper) Uninstall(instanceID string) error {
	w.mu.Lock()
	ln, ok := w.listeners[instanceID]
	delete(w.listeners, instanceID)
	delete(w.addrs, instanceID)
	w.mu.Unlock()
	if !ok {
		return fmt.Errorf("smock: wrapper %s: no instance %q", w.node, instanceID)
	}
	return ln.Close()
}

// Close stops all hosted instances and the control listener: the whole
// node goes dark, exactly what a crash looks like from the outside.
func (w *NodeWrapper) Close() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	for id, ln := range w.listeners {
		ln.Close()
		delete(w.listeners, id)
		delete(w.addrs, id)
	}
	if w.control != nil {
		w.control.Close()
		w.control = nil
	}
	return nil
}

// ServeControl serves the wrapper's own handler (remote installs and
// status probes) on the node's transport and returns its address. This
// is the per-node probe target for failure detection: any answer means
// the node is alive, independent of which components it hosts. Calling
// it again returns the existing address.
func (w *NodeWrapper) ServeControl() (string, error) {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.control != nil {
		return w.controlAddr, nil
	}
	ln, err := w.tr.Serve("", w.Handler())
	if err != nil {
		return "", fmt.Errorf("smock: wrapper %s: serving control: %w", w.node, err)
	}
	w.control = ln
	w.controlAddr = ln.Addr()
	return w.controlAddr, nil
}

// ControlAddr returns the control address, or "" if ServeControl was
// never called. It keeps answering after Close: a failure detector must
// go on probing a crashed node's last known address — that the probes
// now fail is exactly the signal.
func (w *NodeWrapper) ControlAddr() string {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.controlAddr
}

// Handler exposes the wrapper itself over the transport: KindInstall
// messages carry encoded install orders (remote installation), and
// "status" requests answer liveness probes with the node name and its
// hosted-instance count.
func (w *NodeWrapper) Handler() transport.Handler {
	return transport.HandlerFunc(func(m *wire.Message) *wire.Message {
		if m.Kind == wire.KindRequest && m.Method == "status" {
			return &wire.Message{
				Kind: wire.KindResponse, ID: m.ID,
				Meta: map[string]string{
					"node":      string(w.node),
					"instances": fmt.Sprint(w.Instances()),
				},
			}
		}
		if m.Kind != wire.KindInstall {
			return transport.ErrorResponse(m, "wrapper %s: unexpected kind %v", w.node, m.Kind)
		}
		order, err := decodeInstallOrder(m.Body)
		if err != nil {
			return transport.ErrorResponse(m, "wrapper %s: %v", w.node, err)
		}
		addr, err := w.Install(order)
		if err != nil {
			return transport.ErrorResponse(m, "%v", err)
		}
		return &wire.Message{
			Kind: wire.KindResponse, ID: m.ID,
			Meta: map[string]string{"addr": addr},
		}
	})
}

// encodeInstallOrder serializes an order for remote wrappers.
func encodeInstallOrder(o InstallOrder) ([]byte, error) {
	config := map[string]any{}
	for name, v := range o.Config {
		config[name] = v.String()
	}
	ups := map[string]any{}
	for iface, addr := range o.Upstreams {
		ups[iface] = addr
	}
	secrets := map[string]any{}
	for iface, sec := range o.UpstreamSecrets {
		secrets[iface] = sec
	}
	return wire.Marshal(map[string]any{
		"component": o.Component,
		"instance":  o.InstanceID,
		"config":    config,
		"state":     o.State,
		"upstreams": ups,
		"secrets":   secrets,
		"serve":     o.ServeSecret,
	})
}

func decodeInstallOrder(data []byte) (InstallOrder, error) {
	v, err := wire.Unmarshal(data)
	if err != nil {
		return InstallOrder{}, err
	}
	f, ok := v.(map[string]any)
	if !ok {
		return InstallOrder{}, fmt.Errorf("install order is %T", v)
	}
	o := InstallOrder{Config: property.Set{}, Upstreams: map[string]string{}, UpstreamSecrets: map[string][]byte{}}
	o.Component, _ = f["component"].(string)
	o.InstanceID, _ = f["instance"].(string)
	if o.Component == "" || o.InstanceID == "" {
		return InstallOrder{}, fmt.Errorf("install order missing component or instance")
	}
	if cfg, ok := f["config"].(map[string]any); ok {
		for name, raw := range cfg {
			s, ok := raw.(string)
			if !ok {
				return InstallOrder{}, fmt.Errorf("config %q is %T", name, raw)
			}
			o.Config[name] = property.Parse(s)
		}
	}
	o.State, _ = f["state"].([]byte)
	if ups, ok := f["upstreams"].(map[string]any); ok {
		for iface, raw := range ups {
			s, ok := raw.(string)
			if !ok {
				return InstallOrder{}, fmt.Errorf("upstream %q is %T", iface, raw)
			}
			o.Upstreams[iface] = s
		}
	}
	if secs, ok := f["secrets"].(map[string]any); ok {
		for iface, raw := range secs {
			b, ok := raw.([]byte)
			if !ok {
				return InstallOrder{}, fmt.Errorf("secret %q is %T", iface, raw)
			}
			o.UpstreamSecrets[iface] = b
		}
	}
	o.ServeSecret, _ = f["serve"].([]byte)
	return o, nil
}

// RemoteInstall sends an install order to a wrapper served at addr.
func RemoteInstall(tr transport.Transport, addr string, order InstallOrder) (string, error) {
	ep, err := tr.Dial(addr)
	if err != nil {
		return "", err
	}
	defer ep.Close()
	body, err := encodeInstallOrder(order)
	if err != nil {
		return "", err
	}
	resp, err := ep.Call(&wire.Message{Kind: wire.KindInstall, Body: body})
	if err != nil {
		return "", err
	}
	if err := transport.AsError(resp); err != nil {
		return "", err
	}
	if resp.Meta == nil || resp.Meta["addr"] == "" {
		return "", fmt.Errorf("smock: wrapper at %s returned no address", addr)
	}
	return resp.Meta["addr"], nil
}
