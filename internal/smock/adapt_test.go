package smock_test

import (
	"strings"
	"sync"
	"testing"

	"partsvc/internal/planner"
	"partsvc/internal/smock"
	"partsvc/internal/spec"
	"partsvc/internal/topology"
)

// TestLookupDeregister: deregistering removes exactly the named entry,
// reports whether one existed, and re-registering replaces in place.
func TestLookupDeregister(t *testing.T) {
	l := smock.NewLookup()
	for _, e := range []smock.Entry{
		{Service: "mail", ServerAddr: "addr-1"},
		{Service: "video", ServerAddr: "addr-2"},
	} {
		if err := l.Register(e); err != nil {
			t.Fatal(err)
		}
	}
	if !l.Deregister("mail") {
		t.Fatal("deregistering a registered service must report true")
	}
	if l.Deregister("mail") {
		t.Fatal("deregistering twice must report false")
	}
	if got := l.Find("mail", nil); len(got) != 0 {
		t.Fatalf("deregistered service still found: %v", got)
	}
	if got := l.Find("video", nil); len(got) != 1 {
		t.Fatalf("unrelated service lost: %v", got)
	}
	// Replace-on-re-register: no duplicate entries, new address wins.
	if err := l.Register(smock.Entry{Service: "video", ServerAddr: "addr-3"}); err != nil {
		t.Fatal(err)
	}
	got := l.Find("video", nil)
	if len(got) != 1 || got[0].ServerAddr != "addr-3" {
		t.Fatalf("re-registration must replace: %v", got)
	}
}

// TestLookupDeregisterAddr: every entry bound to a torn-down address
// disappears at once, regardless of service name.
func TestLookupDeregisterAddr(t *testing.T) {
	l := smock.NewLookup()
	for _, e := range []smock.Entry{
		{Service: "mail-head-a", ServerAddr: "addr-1"},
		{Service: "mail-head-b", ServerAddr: "addr-1"},
		{Service: "video", ServerAddr: "addr-2"},
	} {
		if err := l.Register(e); err != nil {
			t.Fatal(err)
		}
	}
	if got := l.DeregisterAddr(""); got != 0 {
		t.Fatalf("DeregisterAddr(\"\") = %d, want 0", got)
	}
	if got := l.DeregisterAddr("addr-1"); got != 2 {
		t.Fatalf("DeregisterAddr removed %d entries, want 2", got)
	}
	if got := l.Find("", nil); len(got) != 1 || got[0].Service != "video" {
		t.Fatalf("surviving entries = %v, want only video", got)
	}
}

// TestTeardownDeregistersLookup: tearing an instance down scrubs every
// lookup entry pointing at its address, so clients can never download a
// binding to a dead listener.
func TestTeardownDeregistersLookup(t *testing.T) {
	w := newWorld(t)
	w.engine.SetLookup(w.lookup)
	req := planner.Request{Interface: spec.IfaceClient, ClientNode: topology.NYClient, User: "Alice", RateRPS: 50}
	addr, dep, err := w.gs.Access(req)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.lookup.Register(smock.Entry{Service: "mail-head", ServerAddr: addr}); err != nil {
		t.Fatal(err)
	}
	head := dep.Placements[0]
	if err := w.engine.Teardown(head); err != nil {
		t.Fatal(err)
	}
	if got := w.lookup.Find("mail-head", nil); len(got) != 0 {
		t.Fatalf("lookup still resolves the torn-down head: %v", got)
	}
	// The pre-registered generic-server entry (a different address) must
	// survive.
	if got := w.lookup.Find("mail", nil); len(got) != 1 {
		t.Fatalf("unrelated lookup entry lost: %v", got)
	}
}

// TestConcurrentApplySerialized is the -race regression for the per-
// engine apply lock: two goroutines repeatedly applying an
// evict-and-reinstall diff for the same placement must serialize whole
// diffs (never interleaving one goroutine's teardown with the other's
// install) and leave a consistent engine.
func TestConcurrentApplySerialized(t *testing.T) {
	w := newWorld(t)
	req := planner.Request{Interface: spec.IfaceClient, ClientNode: topology.NYClient, User: "Alice", RateRPS: 50}
	_, dep, err := w.gs.Access(req)
	if err != nil {
		t.Fatal(err)
	}
	if len(dep.Placements) != 2 {
		t.Fatalf("NY chain should be client -> primary, got %s", dep)
	}
	head := dep.Placements[0] // MailClient@ny-2
	head.Reused = false
	diff := &planner.Diff{
		New:     &planner.Deployment{Placements: []planner.Placement{head, dep.Placements[1]}},
		Install: []planner.Placement{head},
		Evicted: []planner.Placement{head},
	}
	const rounds = 20
	gen0 := w.engine.Generation()
	count0 := w.engine.InstanceCount()
	var wg sync.WaitGroup
	errs := make([]error, 2)
	for g := 0; g < 2; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < rounds; i++ {
				if _, err := w.engine.Apply(diff, w.gs.Requires); err != nil {
					errs[g] = err
					return
				}
			}
		}(g)
	}
	wg.Wait()
	for g, err := range errs {
		if err != nil {
			t.Fatalf("goroutine %d: %v", g, err)
		}
	}
	if got := w.engine.Generation(); got != gen0+2*rounds {
		t.Fatalf("generation = %d, want %d (every apply counted once)", got, gen0+2*rounds)
	}
	if got := w.engine.InstanceCount(); got != count0 {
		t.Fatalf("instance count = %d, want %d (reinstalls must not leak)", got, count0)
	}
	if _, ok := w.engine.AddrOf(head); !ok {
		t.Fatal("the reinstalled head must be live")
	}
}

// TestOrphanedBy: instances transitively wired through a dead provider
// are reported as orphans; instances on other chains are not.
func TestOrphanedBy(t *testing.T) {
	w := newWorld(t)
	// Warm up San Diego, then deploy Seattle's chain, which runs
	// ... -> Encryptor@sea-2 -> Decryptor@sd-2 -> view@sd-2.
	warm := planner.Request{Interface: spec.IfaceClient, ClientNode: topology.SDClient, User: "Alice", RateRPS: 50}
	_, warmDep, err := w.gs.Access(warm)
	if err != nil {
		t.Fatal(err)
	}
	req := planner.Request{Interface: spec.IfaceClient, ClientNode: topology.SeaClient, User: "Carol", RateRPS: 50}
	_, dep, err := w.gs.Access(req)
	if err != nil {
		t.Fatal(err)
	}
	// Everything placed on sd-2 dies — exactly what revalidation evicts
	// when the node goes down.
	var dead []planner.Placement
	for _, d := range []*planner.Deployment{warmDep, dep} {
		for _, p := range d.Placements {
			if p.Node == topology.SDClient {
				dead = append(dead, p)
			}
		}
	}
	if len(dead) == 0 {
		t.Fatalf("Seattle chain should traverse sd-2: %s", dep)
	}
	orphans := w.engine.OrphanedBy(dead)
	want := map[string]bool{}
	for _, p := range dep.Placements {
		if p.Node == topology.SeaClient {
			want[p.Key()] = true
		}
	}
	if len(orphans) != len(want) {
		t.Fatalf("orphans = %v, want the %d sea-2 placements", orphans, len(want))
	}
	for _, key := range orphans {
		if !want[key] {
			t.Errorf("unexpected orphan %s", key)
		}
		if !strings.Contains(key, "sea-2") {
			t.Errorf("orphan %s is not on sea-2", key)
		}
	}
	// A dead set that nothing chains through orphans nothing.
	if got := w.engine.OrphanedBy(nil); got != nil {
		t.Fatalf("OrphanedBy(nil) = %v, want nil", got)
	}
}
