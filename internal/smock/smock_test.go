package smock_test

import (
	"strings"
	"testing"

	"partsvc/internal/mail"
	"partsvc/internal/netmodel"
	"partsvc/internal/planner"
	"partsvc/internal/property"
	"partsvc/internal/seccrypto"
	"partsvc/internal/smock"
	"partsvc/internal/spec"
	"partsvc/internal/topology"
	"partsvc/internal/transport"
	"partsvc/internal/wire"
)

// world is a full single-process case study: topology, wrappers on
// every node, the mail factories, a pre-deployed primary in New York,
// a generic server, and a lookup service — Figure 1 end to end.
type world struct {
	tr      transport.Transport
	keys    *seccrypto.KeyRing
	primary *mail.Server
	engine  *smock.Engine
	gs      *smock.GenericServer
	lookup  *smock.Lookup
}

func newWorld(t *testing.T) *world {
	t.Helper()
	return newWorldOn(t, transport.NewInProc())
}

// newWorldOn builds the case-study world over any transport; the TCP
// variant runs every component behind real sockets.
func newWorldOn(t *testing.T, tr transport.Transport) *world {
	t.Helper()
	w := &world{tr: tr, keys: seccrypto.NewKeyRing()}
	clock := transport.NewRealClock()
	w.primary = mail.NewServer(w.keys, clock)
	for _, u := range []string{"Alice", "Bob", "Carol"} {
		if err := w.primary.CreateAccount(u); err != nil {
			t.Fatal(err)
		}
	}
	reg := smock.NewRegistry()
	if err := mail.RegisterFactories(reg, &mail.ServiceEnv{Primary: w.primary, Keys: w.keys}); err != nil {
		t.Fatal(err)
	}
	if reg.Components() != 6 {
		t.Fatalf("expected 6 factories, got %d", reg.Components())
	}

	net := topology.CaseStudy()
	w.engine = smock.NewEngine(w.tr)
	var nyWrapper *smock.NodeWrapper
	for _, node := range net.Nodes() {
		wr := smock.NewNodeWrapper(node.ID, w.tr, reg, clock)
		w.engine.RegisterWrapper(wr)
		if node.ID == topology.NYServer {
			nyWrapper = wr
		}
	}

	// Pre-deploy the primary MailServer in New York (case-study
	// constraint 1) and adopt it.
	addr, err := nyWrapper.Install(smock.InstallOrder{
		Component: spec.CompMailServer, InstanceID: "mail-primary",
	})
	if err != nil {
		t.Fatal(err)
	}
	svc := spec.MailService()
	pl := planner.New(svc, net)
	msPlace, err := pl.PrimaryPlacement(spec.CompMailServer, topology.NYServer)
	if err != nil {
		t.Fatal(err)
	}
	pl.AddExisting(msPlace)
	w.engine.AdoptInstance(msPlace, addr)

	w.gs = smock.NewGenericServer(svc, pl, w.engine)
	ln, err := w.tr.Serve("", w.gs.Handler())
	if err != nil {
		t.Fatal(err)
	}
	w.lookup = smock.NewLookup()
	if err := w.lookup.Register(smock.Entry{
		Service: "mail", Attrs: map[string]string{"type": "mail", "secure": "yes"},
		ServerAddr: ln.Addr(),
	}); err != nil {
		t.Fatal(err)
	}
	return w
}

// proxyFor runs the lookup + generic-proxy handshake for a client.
func (w *world) proxyFor(t *testing.T, node netmodel.NodeID, user string) *smock.GenericProxy {
	t.Helper()
	proxy, err := smock.NewGenericProxy(w.tr, w.lookup, "mail", map[string]string{"type": "mail"})
	if err != nil {
		t.Fatal(err)
	}
	proxy.Interface = spec.IfaceClient
	proxy.Node = node
	proxy.User = user
	proxy.RateRPS = 50
	return proxy
}

// TestFigure1FlowNewYork: the NY client gets a direct MailClient ->
// MailServer deployment and full mail semantics through the proxy.
func TestFigure1FlowNewYork(t *testing.T) {
	w := newWorld(t)
	proxy := w.proxyFor(t, topology.NYClient, "Alice")
	defer proxy.Close()

	alice := mail.NewClient("Alice", w.keys, mail.NewRemote(proxy))
	if _, err := alice.Send("Bob", "hello", []byte("from ny"), 3); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(proxy.Deployment, "MailClient@ny-2") ||
		!strings.Contains(proxy.Deployment, "MailServer@ny-1*") {
		t.Errorf("NY deployment = %s", proxy.Deployment)
	}
	if strings.Contains(proxy.Deployment, "ViewMailServer") {
		t.Errorf("NY must not cache: %s", proxy.Deployment)
	}
	if w.primary.Store().InboxCount("Bob") != 1 {
		t.Error("send must reach the primary")
	}
	// Full client features work end to end.
	if err := alice.AddContact("Bob"); err != nil {
		t.Fatal(err)
	}
	contacts, err := alice.Contacts()
	if err != nil || len(contacts) != 1 {
		t.Errorf("contacts = %v, %v", contacts, err)
	}
}

// TestFigure1FlowSanDiego: the SD client is served through a local
// view and an encryptor tunnel; mail round-trips with end-to-end
// decryption at the client.
func TestFigure1FlowSanDiego(t *testing.T) {
	w := newWorld(t)
	proxy := w.proxyFor(t, topology.SDClient, "Alice")
	defer proxy.Close()

	alice := mail.NewClient("Alice", w.keys, mail.NewRemote(proxy))
	if _, err := alice.Send("Bob", "over the tunnel", []byte("sd payload"), 3); err != nil {
		t.Fatal(err)
	}
	dep := proxy.Deployment
	for _, want := range []string{
		"MailClient@sd-2", "ViewMailServer@sd-2{TrustLevel=4}",
		"Encryptor@sd-2", "Decryptor@ny-1", "MailServer@ny-1*",
	} {
		if !strings.Contains(dep, want) {
			t.Errorf("SD deployment missing %s: %s", want, dep)
		}
	}
	// Write-through view: the primary sees the send immediately.
	if w.primary.Store().InboxCount("Bob") != 1 {
		t.Error("send must reach the primary through view + tunnel")
	}
	// A message sent at the primary propagates down; Alice receives both
	// directions through her proxy.
	if _, err := w.primary.Send("Bob", "Alice", "reply", []byte("from ny"), 2); err != nil {
		t.Fatal(err)
	}
	msgs, err := alice.Receive()
	if err != nil {
		t.Fatal(err)
	}
	if len(msgs) != 1 || string(msgs[0].Body) != "from ny" {
		t.Errorf("alice inbox = %v", msgs)
	}
}

// TestFigure1FlowSeattleIncrementalAndRestricted: after the SD client,
// the Seattle partner user gets a restricted client chained to the SD
// view; the address book is unavailable.
func TestFigure1FlowSeattleIncrementalAndRestricted(t *testing.T) {
	w := newWorld(t)
	sdProxy := w.proxyFor(t, topology.SDClient, "Alice")
	defer sdProxy.Close()
	aliceSD := mail.NewClient("Alice", w.keys, mail.NewRemote(sdProxy))
	if _, err := aliceSD.Send("Bob", "warm up", []byte("x"), 2); err != nil {
		t.Fatal(err)
	}

	seaProxy := w.proxyFor(t, topology.SeaClient, "Carol")
	defer seaProxy.Close()
	carol := mail.NewViewClient("Carol", 2, w.keys.SubRing(2), mail.NewRemote(seaProxy))
	if _, err := carol.Send("Alice", "hello", []byte("from seattle"), 2); err != nil {
		t.Fatal(err)
	}
	dep := seaProxy.Deployment
	for _, want := range []string{
		"ViewMailClient@sea-2", "ViewMailServer@sea-2{TrustLevel=2}",
		"Encryptor@sea-2", "Decryptor@sd-2", "ViewMailServer@sd-2{TrustLevel=4}*",
	} {
		if !strings.Contains(dep, want) {
			t.Errorf("Seattle deployment missing %s: %s", want, dep)
		}
	}
	if w.primary.Store().InboxCount("Alice") != 1 {
		t.Error("Seattle send must reach the primary through the chained views")
	}
	// The restricted object view rejects address-book calls.
	restricted := mail.NewRemote(seaProxy)
	if err := restricted.AddContact("Carol", "Alice"); err == nil {
		t.Error("ViewMailClient must reject addContact")
	}
}

// TestSecondClientReusesDeployment: a second SD client binds without
// installing anything new.
func TestSecondClientReusesDeployment(t *testing.T) {
	w := newWorld(t)
	first := w.proxyFor(t, topology.SDClient, "Alice")
	defer first.Close()
	a := mail.NewClient("Alice", w.keys, mail.NewRemote(first))
	if _, err := a.Send("Bob", "s", []byte("x"), 2); err != nil {
		t.Fatal(err)
	}
	before := w.engine.InstanceCount()
	second := w.proxyFor(t, topology.SDClient, "Alice")
	defer second.Close()
	b := mail.NewClient("Alice", w.keys, mail.NewRemote(second))
	if _, err := b.Send("Bob", "s2", []byte("y"), 2); err != nil {
		t.Fatal(err)
	}
	if after := w.engine.InstanceCount(); after != before {
		t.Errorf("second client must reuse instances: %d -> %d", before, after)
	}
}

// TestProxyErrorsSurfaceFromPlanner: an impossible request reports the
// planner failure through the proxy.
func TestProxyErrorsSurfaceFromPlanner(t *testing.T) {
	w := newWorld(t)
	proxy := w.proxyFor(t, topology.SeaClient, "Carol")
	proxy.RateRPS = 1e9
	defer proxy.Close()
	carol := mail.NewViewClient("Carol", 2, w.keys.SubRing(2), mail.NewRemote(proxy))
	if _, err := carol.Send("Alice", "s", []byte("x"), 2); err == nil {
		t.Error("infeasible rate must surface an error")
	}
}

// TestLookupService covers attribute matching and the transport
// handler.
func TestLookupService(t *testing.T) {
	l := smock.NewLookup()
	if err := l.Register(smock.Entry{Service: "mail", ServerAddr: "a", Attrs: map[string]string{"x": "1"}}); err != nil {
		t.Fatal(err)
	}
	if err := l.Register(smock.Entry{Service: "video", ServerAddr: "b", Attrs: map[string]string{"x": "2"}}); err != nil {
		t.Fatal(err)
	}
	if err := l.Register(smock.Entry{}); err == nil {
		t.Error("empty registration must fail")
	}
	if got := l.Find("", nil); len(got) != 2 {
		t.Errorf("find all = %d", len(got))
	}
	if got := l.Find("", map[string]string{"x": "2"}); len(got) != 1 || got[0].Service != "video" {
		t.Errorf("attr find = %v", got)
	}
	if got := l.Find("mail", map[string]string{"x": "2"}); len(got) != 0 {
		t.Errorf("conflicting find = %v", got)
	}
	// Re-registration replaces.
	if err := l.Register(smock.Entry{Service: "mail", ServerAddr: "c"}); err != nil {
		t.Fatal(err)
	}
	if got := l.Find("mail", nil); len(got) != 1 || got[0].ServerAddr != "c" {
		t.Errorf("replaced entry = %v", got)
	}

	// Transport handler surface.
	h := l.Handler()
	resp := h.Handle(&wire.Message{Kind: wire.KindRequest, Method: "register",
		Meta: map[string]string{"service": "svc", "addr": "z", "attr.k": "v"}})
	if transport.AsError(resp) != nil {
		t.Fatalf("register via handler: %v", transport.AsError(resp))
	}
	resp = h.Handle(&wire.Message{Kind: wire.KindRequest, Method: "lookup",
		Meta: map[string]string{"attr.k": "v"}})
	if transport.AsError(resp) != nil || resp.Meta["addr"] != "z" {
		t.Errorf("lookup via handler = %+v", resp)
	}
	resp = h.Handle(&wire.Message{Kind: wire.KindRequest, Method: "lookup",
		Meta: map[string]string{"attr.k": "missing"}})
	if transport.AsError(resp) == nil {
		t.Error("failed lookup must error")
	}
	resp = h.Handle(&wire.Message{Kind: wire.KindRequest, Method: "bogus"})
	if transport.AsError(resp) == nil {
		t.Error("unknown method must error")
	}
}

// TestRegistryValidation covers factory registration errors.
func TestRegistryValidation(t *testing.T) {
	reg := smock.NewRegistry()
	if err := reg.Register("", nil); err == nil {
		t.Error("empty registration must fail")
	}
	f := func(*smock.ActivationContext) (transport.Handler, error) { return nil, nil }
	if err := reg.Register("c", f); err != nil {
		t.Fatal(err)
	}
	if err := reg.Register("c", f); err == nil {
		t.Error("duplicate registration must fail")
	}
	if _, err := reg.Activate("ghost", &smock.ActivationContext{}); err == nil {
		t.Error("unknown component must fail")
	}
}

// TestRemoteInstallOverTransport exercises the KindInstall path.
func TestRemoteInstallOverTransport(t *testing.T) {
	tr := transport.NewInProc()
	reg := smock.NewRegistry()
	echo := transport.HandlerFunc(func(m *wire.Message) *wire.Message {
		return &wire.Message{Kind: wire.KindResponse, ID: m.ID, Body: m.Body}
	})
	if err := reg.Register("Echo", func(ctx *smock.ActivationContext) (transport.Handler, error) {
		return echo, nil
	}); err != nil {
		t.Fatal(err)
	}
	w := smock.NewNodeWrapper("n1", tr, reg, transport.NewRealClock())
	ln, err := tr.Serve("wrapper-n1", w.Handler())
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()

	addr, err := smock.RemoteInstall(tr, "wrapper-n1", smock.InstallOrder{
		Component: "Echo", InstanceID: "echo#1",
	})
	if err != nil {
		t.Fatal(err)
	}
	ep, err := tr.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := ep.Call(&wire.Message{Kind: wire.KindRequest, Body: []byte("ping")})
	if err != nil || string(resp.Body) != "ping" {
		t.Errorf("remote-installed echo = %+v, %v", resp, err)
	}
	if w.Instances() != 1 {
		t.Errorf("instances = %d", w.Instances())
	}
	if _, got := w.AddrOf("echo#1"); !got {
		t.Error("AddrOf must resolve")
	}
	// Duplicate instance IDs are rejected; uninstall frees the slot.
	if _, err := w.Install(smock.InstallOrder{Component: "Echo", InstanceID: "echo#1"}); err == nil {
		t.Error("duplicate instance must fail")
	}
	if err := w.Uninstall("echo#1"); err != nil {
		t.Fatal(err)
	}
	if err := w.Uninstall("echo#1"); err == nil {
		t.Error("double uninstall must fail")
	}
	// Bad orders surface errors.
	if _, err := smock.RemoteInstall(tr, "wrapper-n1", smock.InstallOrder{Component: "Ghost", InstanceID: "g#1"}); err == nil {
		t.Error("unknown component must fail remotely")
	}
}

// TestFigure1FlowOverTCP runs the San Diego case over real TCP sockets:
// every component instance, the generic server, and the encryptor
// tunnel listen on 127.0.0.1 ports, proving the runtime is not bound to
// the in-process transport.
func TestFigure1FlowOverTCP(t *testing.T) {
	w := newWorldOn(t, transport.NewTCP())
	proxy := w.proxyFor(t, topology.SDClient, "Alice")
	defer proxy.Close()

	alice := mail.NewClient("Alice", w.keys, mail.NewRemote(proxy))
	if _, err := alice.Send("Bob", "tcp", []byte("over sockets"), 3); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(proxy.Deployment, "Encryptor@sd-2") {
		t.Errorf("TCP deployment = %s", proxy.Deployment)
	}
	if w.primary.Store().InboxCount("Bob") != 1 {
		t.Error("send must reach the primary over TCP")
	}
	bob := mail.NewClient("Bob", w.keys, w.primary)
	msgs, err := bob.Receive()
	if err != nil || len(msgs) != 1 || string(msgs[0].Body) != "over sockets" {
		t.Fatalf("receive = %v, %v", msgs, err)
	}
}

// TestInstallOrderCodecRoundTrip covers the install-order wire codec,
// including config, upstreams, secrets, and state.
func TestInstallOrderCodecAndRemoteSecrets(t *testing.T) {
	tr := transport.NewInProc()
	reg := smock.NewRegistry()
	var gotCtx *smock.ActivationContext
	err := reg.Register("Probe", func(ctx *smock.ActivationContext) (transport.Handler, error) {
		gotCtx = ctx
		return transport.HandlerFunc(func(m *wire.Message) *wire.Message {
			return &wire.Message{Kind: wire.KindResponse, ID: m.ID}
		}), nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := reg.Register("Up", func(ctx *smock.ActivationContext) (transport.Handler, error) {
		return transport.HandlerFunc(func(m *wire.Message) *wire.Message {
			return &wire.Message{Kind: wire.KindResponse, ID: m.ID}
		}), nil
	}); err != nil {
		t.Fatal(err)
	}
	w := smock.NewNodeWrapper("n1", tr, reg, transport.NewRealClock())
	ln, err := tr.Serve("wrap", w.Handler())
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	upAddr, err := w.Install(smock.InstallOrder{Component: "Up", InstanceID: "up#1"})
	if err != nil {
		t.Fatal(err)
	}
	_, err = smock.RemoteInstall(tr, "wrap", smock.InstallOrder{
		Component:  "Probe",
		InstanceID: "probe#1",
		Config:     property.Set{"TrustLevel": property.Int(3), "Flag": property.Bool(true)},
		State:      []byte("snapshot"),
		Upstreams:  map[string]string{"I": upAddr},
		UpstreamSecrets: map[string][]byte{
			"I": {1, 2, 3},
		},
		ServeSecret: []byte{9, 9},
	})
	if err != nil {
		t.Fatal(err)
	}
	if gotCtx == nil {
		t.Fatal("factory not invoked")
	}
	if !gotCtx.Config["TrustLevel"].Equal(property.Int(3)) || !gotCtx.Config["Flag"].Equal(property.Bool(true)) {
		t.Errorf("config = %v", gotCtx.Config)
	}
	if string(gotCtx.State) != "snapshot" {
		t.Errorf("state = %q", gotCtx.State)
	}
	if len(gotCtx.Upstreams) != 1 || gotCtx.Upstreams["I"] == nil {
		t.Errorf("upstreams = %v", gotCtx.Upstreams)
	}
	if string(gotCtx.UpstreamSecrets["I"]) != "\x01\x02\x03" || string(gotCtx.ServeSecret) != "\x09\x09" {
		t.Errorf("secrets = %v / %v", gotCtx.UpstreamSecrets, gotCtx.ServeSecret)
	}
	// Wrapper introspection and shutdown.
	if _, ok := w.AddrOf("probe#1"); !ok {
		t.Error("AddrOf(probe#1)")
	}
	if w.Instances() != 2 {
		t.Errorf("instances = %d", w.Instances())
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	if w.Instances() != 0 {
		t.Error("Close must uninstall everything")
	}
	// The wrapper handler rejects non-install messages and bad orders.
	resp := w.Handler().Handle(&wire.Message{Kind: wire.KindRequest})
	if transport.AsError(resp) == nil {
		t.Error("non-install kind must be rejected")
	}
	resp = w.Handler().Handle(&wire.Message{Kind: wire.KindInstall, Body: []byte{0x7f}})
	if transport.AsError(resp) == nil {
		t.Error("garbage order must be rejected")
	}
}

// TestEngineErrorPaths covers missing wrappers, unknown reuse, and
// teardown of unknown instances.
func TestEngineErrorPaths(t *testing.T) {
	tr := transport.NewInProc()
	engine := smock.NewEngine(tr)
	svc := spec.MailService()
	requires := func(component string) (string, bool) {
		comp, ok := svc.Component(component)
		if !ok || len(comp.Requires) == 0 {
			return "", false
		}
		return comp.Requires[0].Name, true
	}
	// No wrapper registered for the node.
	dep := &planner.Deployment{Placements: []planner.Placement{
		{Component: spec.CompMailServer, Node: "ghost"},
	}}
	if _, err := engine.Execute(dep, requires); err == nil {
		t.Error("missing wrapper must fail")
	}
	// Reuse of an unknown instance.
	dep = &planner.Deployment{Placements: []planner.Placement{
		{Component: spec.CompMailServer, Node: "ghost", Reused: true},
	}}
	if _, err := engine.Execute(dep, requires); err == nil {
		t.Error("unknown reuse must fail")
	}
	// Teardown of an unknown placement.
	if err := engine.Teardown(planner.Placement{Component: "X", Node: "y"}); err == nil {
		t.Error("unknown teardown must fail")
	}
	// AddrOf on unknown placement.
	if _, ok := engine.AddrOf(planner.Placement{Component: "X", Node: "y"}); ok {
		t.Error("unknown AddrOf must miss")
	}
}

// TestGenericProxyLookupMiss: a proxy for an unregistered service fails
// at construction.
func TestGenericProxyLookupMiss(t *testing.T) {
	tr := transport.NewInProc()
	if _, err := smock.NewGenericProxy(tr, smock.NewLookup(), "ghost", nil); err == nil {
		t.Error("unknown service must fail")
	}
}
