package smock_test

import (
	"fmt"
	"testing"

	"partsvc/internal/netmodel"
	"partsvc/internal/netmon"
	"partsvc/internal/planner"
	"partsvc/internal/property"
	"partsvc/internal/smock"
	"partsvc/internal/spec"
	"partsvc/internal/transport"
	"partsvc/internal/wire"
)

// portalSpec mirrors the planner package's portal service: a Portal
// requiring both a confidential ServerInterface and a LogInterface, so
// every linkage graph is a tree the chain planners cannot express. The
// solver backend is the only one that can plan it, which makes this the
// end-to-end proof that tree deployments flow through the generic
// server, the engine's tree executor, and the repair path.
func portalSpec() *spec.Service {
	lit := func(v property.Value) property.Expr { return property.Lit(v) }
	return &spec.Service{
		Name: "portal",
		Properties: []property.Type{
			property.BoolType("Confidentiality"),
			property.IntervalType("TrustLevel", 1, 5),
		},
		Interfaces: []spec.InterfaceDecl{
			{Name: "PortalInterface", Properties: []string{"Confidentiality"}},
			{Name: "ServerInterface", Properties: []string{"Confidentiality", "TrustLevel"}},
			{Name: "LogInterface", Properties: []string{"Confidentiality"}},
		},
		Components: []spec.Component{
			{
				Name: "Portal",
				Implements: []spec.InterfaceSpec{{
					Name:  "PortalInterface",
					Props: map[string]property.Expr{"Confidentiality": lit(property.Bool(false))},
				}},
				Requires: []spec.InterfaceSpec{
					{Name: "ServerInterface", Props: map[string]property.Expr{"Confidentiality": lit(property.Bool(true))}},
					{Name: "LogInterface"},
				},
				Behaviors: spec.Behaviors{CPUMSPerRequest: 0.5, RequestBytes: 1024, ResponseBytes: 1024},
			},
			{
				Name: "Server",
				Implements: []spec.InterfaceSpec{{
					Name: "ServerInterface",
					Props: map[string]property.Expr{
						"Confidentiality": lit(property.Bool(true)),
						"TrustLevel":      lit(property.Int(5)),
					},
				}},
				Conditions: []property.Condition{property.CondGE("Node.TrustLevel", 5)},
				Behaviors:  spec.Behaviors{CapacityRPS: 1000, CPUMSPerRequest: 1, RequestBytes: 4096, ResponseBytes: 4096},
			},
			{
				Name: "LogServer",
				Implements: []spec.InterfaceSpec{{
					Name:  "LogInterface",
					Props: map[string]property.Expr{"Confidentiality": lit(property.Bool(false))},
				}},
				// Logs stay on trusted machines, which keeps the log branch
				// off the client node — the deployment must actually fan out.
				Conditions: []property.Condition{property.CondGE("Node.TrustLevel", 5)},
				Behaviors:  spec.Behaviors{CapacityRPS: 5000, CPUMSPerRequest: 0.1, RequestBytes: 256, ResponseBytes: 64},
			},
			{
				Name: "Encryptor2",
				Implements: []spec.InterfaceSpec{{
					Name:  "ServerInterface",
					Props: map[string]property.Expr{"Confidentiality": lit(property.Bool(true))},
				}},
				Requires:  []spec.InterfaceSpec{{Name: "ServerInterface"}},
				Behaviors: spec.Behaviors{CPUMSPerRequest: 0.2, RequestBytes: 4160, ResponseBytes: 4160},
			},
		},
		ModRules: property.RuleTable{
			"Confidentiality": property.ConfidentialityRule("Confidentiality"),
		},
	}
}

// registerPortalFactories installs trivial handlers for the portal
// components. The Portal's handler calls BOTH of its upstream endpoints
// per request — the multi-upstream wiring only executeTree produces —
// and stitches the answers together so a single client call proves both
// branches of the tree are live.
func registerPortalFactories(t *testing.T, reg *smock.Registry) {
	t.Helper()
	must := func(err error) {
		if err != nil {
			t.Fatal(err)
		}
	}
	must(reg.Register("Server", func(ctx *smock.ActivationContext) (transport.Handler, error) {
		node := ctx.Node
		return transport.HandlerFunc(func(m *wire.Message) *wire.Message {
			return &wire.Message{
				Kind: wire.KindResponse, ID: m.ID,
				Meta: map[string]string{"served-by": string(node)},
				Body: append([]byte("data:"), m.Body...),
			}
		}), nil
	}))
	must(reg.Register("LogServer", func(ctx *smock.ActivationContext) (transport.Handler, error) {
		node := ctx.Node
		return transport.HandlerFunc(func(m *wire.Message) *wire.Message {
			return &wire.Message{
				Kind: wire.KindResponse, ID: m.ID,
				Meta: map[string]string{"logged-at": string(node)},
			}
		}), nil
	}))
	must(reg.Register("Encryptor2", func(ctx *smock.ActivationContext) (transport.Handler, error) {
		up, ok := ctx.Upstreams["ServerInterface"]
		if !ok {
			return nil, fmt.Errorf("Encryptor2: no ServerInterface upstream")
		}
		return transport.HandlerFunc(func(m *wire.Message) *wire.Message {
			resp, err := up.Call(&wire.Message{Kind: wire.KindRequest, Method: m.Method, Body: m.Body})
			if err != nil {
				return transport.ErrorResponse(m, "Encryptor2: %v", err)
			}
			resp.ID = m.ID
			return resp
		}), nil
	}))
	must(reg.Register("Portal", func(ctx *smock.ActivationContext) (transport.Handler, error) {
		srv, ok := ctx.Upstreams["ServerInterface"]
		if !ok {
			return nil, fmt.Errorf("Portal: no ServerInterface upstream")
		}
		logEp, ok := ctx.Upstreams["LogInterface"]
		if !ok {
			return nil, fmt.Errorf("Portal: no LogInterface upstream")
		}
		return transport.HandlerFunc(func(m *wire.Message) *wire.Message {
			dresp, err := srv.Call(&wire.Message{Kind: wire.KindRequest, Method: "fetch", Body: m.Body})
			if err != nil {
				return transport.ErrorResponse(m, "Portal: server branch: %v", err)
			}
			if err := transport.AsError(dresp); err != nil {
				return transport.ErrorResponse(m, "Portal: server branch: %v", err)
			}
			lresp, err := logEp.Call(&wire.Message{Kind: wire.KindRequest, Method: "log", Body: m.Body})
			if err != nil {
				return transport.ErrorResponse(m, "Portal: log branch: %v", err)
			}
			if err := transport.AsError(lresp); err != nil {
				return transport.ErrorResponse(m, "Portal: log branch: %v", err)
			}
			return &wire.Message{
				Kind: wire.KindResponse, ID: m.ID,
				Meta: map[string]string{
					"served-by": dresp.Meta["served-by"],
					"logged-at": lresp.Meta["logged-at"],
				},
				Body: dresp.Body,
			}
		}), nil
	}))
}

// portalNet is a three-node network built for the kill-and-repair
// scenario: an untrusted client machine with insecure uplinks to two
// interchangeable trusted hosts. Trusted components must leave the
// client node, and either trusted host can die without partitioning the
// network or making the spec unplaceable.
func portalNet() *netmodel.Network {
	n := netmodel.New()
	add := func(id netmodel.NodeID, trust int64) {
		err := n.AddNode(netmodel.Node{
			ID: id, Site: "site-" + string(id), CPUCapacityRPS: 2000,
			Props: property.Set{"TrustLevel": property.Int(trust)},
		})
		if err != nil {
			panic(err)
		}
	}
	add("client", 4)
	add("t1", 5)
	add("t2", 5)
	link := func(a, b netmodel.NodeID, latencyMS float64, secure bool) {
		err := n.AddLink(netmodel.Link{
			A: a, B: b, LatencyMS: latencyMS, BandwidthMbps: 100, Secure: secure,
			Props: property.Set{"Confidentiality": property.Bool(secure)},
		})
		if err != nil {
			panic(err)
		}
	}
	link("client", "t1", 50, false)
	link("client", "t2", 60, false)
	link("t1", "t2", 10, true)
	return n
}

// portalWorld deploys the portal service over portalNet with the solver
// backend preferred — the only planner able to place a branching
// linkage graph.
type portalWorld struct {
	tr       transport.Transport
	net      *netmodel.Network
	engine   *smock.Engine
	gs       *smock.GenericServer
	wrappers map[netmodel.NodeID]*smock.NodeWrapper
}

func newPortalWorld(t *testing.T) *portalWorld {
	t.Helper()
	svc := portalSpec()
	if err := svc.Validate(); err != nil {
		t.Fatal(err)
	}
	w := &portalWorld{tr: transport.NewInProc(), wrappers: map[netmodel.NodeID]*smock.NodeWrapper{}}
	clock := transport.NewRealClock()
	reg := smock.NewRegistry()
	registerPortalFactories(t, reg)

	w.net = portalNet()
	w.engine = smock.NewEngine(w.tr)
	for _, node := range w.net.Nodes() {
		wr := smock.NewNodeWrapper(node.ID, w.tr, reg, clock)
		w.engine.RegisterWrapper(wr)
		w.wrappers[node.ID] = wr
	}
	pl := planner.New(svc, w.net)
	pl.PreferSolver = true
	w.gs = smock.NewGenericServer(svc, pl, w.engine)
	return w
}

// callPortal makes one client request through addr and fails the test on
// any client-visible error; it returns the response for inspection.
func (w *portalWorld) callPortal(t *testing.T, addr, payload string) *wire.Message {
	t.Helper()
	ep, err := w.tr.Dial(addr)
	if err != nil {
		t.Fatalf("dialing portal head: %v", err)
	}
	defer ep.Close()
	resp, err := ep.Call(&wire.Message{Kind: wire.KindRequest, Method: "visit", Body: []byte(payload)})
	if err != nil {
		t.Fatalf("portal call: %v", err)
	}
	if err := transport.AsError(resp); err != nil {
		t.Fatalf("portal call returned error: %v", err)
	}
	if got := string(resp.Body); got != "data:"+payload {
		t.Fatalf("portal body = %q, want %q", got, "data:"+payload)
	}
	if resp.Meta["served-by"] == "" || resp.Meta["logged-at"] == "" {
		t.Fatalf("portal response missing branch markers: %v", resp.Meta)
	}
	return resp
}

// TestTreeDeploymentEndToEnd is the DAG acceptance scenario: a service
// whose linkage graph no chain planner can express is planned by the
// solver backend, realized by the engine's tree executor (one instance
// wired to two upstream providers), survives a node kill through
// RepairReplan + Apply, and never surfaces an error to the client.
func TestTreeDeploymentEndToEnd(t *testing.T) {
	w := newPortalWorld(t)
	req := planner.Request{Interface: "PortalInterface", ClientNode: "client", User: "Alice", RateRPS: 10}

	// The chain backends must be unable to express this spec...
	if _, err := w.gs.PlanOnlyVia(req, planner.BackendExhaustive); err == nil {
		t.Fatal("exhaustive backend planned a branching spec")
	}
	if _, err := w.gs.PlanOnlyVia(req, planner.BackendDP); err == nil {
		t.Fatal("DP backend planned a branching spec")
	}

	// ...while Access (solver preferred) deploys it end to end.
	addr, dep, err := w.gs.Access(req)
	if err != nil {
		t.Fatalf("Access: %v", err)
	}
	t.Logf("tree deployment: %s", dep)
	if len(dep.Edges) != len(dep.Placements)-1 {
		t.Fatalf("tree deployment has %d edges for %d placements", len(dep.Edges), len(dep.Placements))
	}
	branching := false
	for _, ed := range dep.Edges {
		if ed.To != ed.From+1 {
			branching = true
		}
	}
	if !branching {
		t.Fatalf("deployment is chain-shaped, not a tree: %s", dep)
	}
	resp := w.callPortal(t, addr, "hello")
	if resp.Meta["served-by"] != "t1" {
		t.Errorf("served-by = %q, want the nearest trusted host %q", resp.Meta["served-by"], "t1")
	}
	if resp.Meta["logged-at"] != "t1" {
		t.Errorf("logged-at = %q, want the nearest trusted host %q", resp.Meta["logged-at"], "t1")
	}

	// Kill the trusted host serving the data branch; the head (the
	// client's own proxy target) stays up and the spare trusted host can
	// absorb both branches.
	var victim netmodel.NodeID
	for _, p := range dep.Placements {
		if p.Component == "Server" {
			victim = p.Node
		}
	}
	if victim == "" || victim == dep.Placements[0].Node {
		t.Fatalf("no killable Server placement in %s", dep)
	}
	w.wrappers[victim].Close()
	mon := netmon.New(w.net)
	if err := mon.ReportNodeDown(victim); err != nil {
		t.Fatal(err)
	}
	ch := planner.NewChangedSet()
	ch.AddNode(victim)

	diff, err := w.gs.RepairReplan(dep, req, ch)
	if err != nil {
		t.Fatalf("RepairReplan after killing %s: %v", victim, err)
	}
	if diff.Unchanged() {
		t.Fatalf("repair kept a deployment on dead node %s", victim)
	}
	for _, p := range diff.New.Placements {
		if p.Node == victim {
			t.Fatalf("repair placed %s on dead node %s", p.Component, victim)
		}
	}
	addr2, err := w.engine.Apply(diff, w.gs.Requires)
	if err != nil {
		t.Fatalf("Apply: %v", err)
	}
	w.gs.NoteDeployed(diff.New)
	t.Logf("repaired deployment after killing %s: %s", victim, diff.New)

	// The repaired tree answers with zero client-visible errors, and
	// both branches now terminate at the surviving trusted host.
	resp = w.callPortal(t, addr2, "again")
	if resp.Meta["served-by"] != "t2" {
		t.Errorf("after repair served-by = %q, want the spare trusted host %q", resp.Meta["served-by"], "t2")
	}
	if resp.Meta["logged-at"] == string(victim) {
		t.Errorf("log branch still served by dead node %s", victim)
	}
}
