package smock

import (
	"crypto/rand"
	"fmt"
	"sort"
	"strings"
	"sync"

	"partsvc/internal/netmodel"
	"partsvc/internal/planner"
	"partsvc/internal/transport"
)

// Engine is the deployment engine: it realizes a planner deployment by
// sending install orders to node wrappers, provider-first, wiring each
// component to its upstream's serving address (Figure 1, step 5).
type Engine struct {
	tr transport.Transport

	// applyMu serializes whole adaptation diffs: two concurrent Apply
	// calls must never interleave their teardown and deploy phases over
	// the same placements (e.mu only makes the individual phases atomic).
	applyMu    sync.Mutex
	generation int // completed Apply count, read via Generation

	mu       sync.Mutex
	wrappers map[netmodel.NodeID]*NodeWrapper
	// instances tracks live instances by placement key so reused
	// placements resolve to their existing address and edge secret.
	instances map[string]instanceInfo
	counter   int
	// lookup, when set, is deregistered on teardown so stale entries
	// never outlive their instances.
	lookup *Lookup
}

type instanceInfo struct {
	addr        string
	serveSecret []byte
	instanceID  string
	node        netmodel.NodeID
	// upstreamAddr is the canonical provider wiring this instance was
	// installed with ("" for terminals and adopted instances): the bare
	// provider address for chain instances, the sorted iface=addr pairs
	// for tree instances. A reuse whose planned provider wiring resolves
	// differently is stale and must be reinstalled; because deployments
	// resolve tail-to-head, a replaced provider cascades fresh wiring
	// toward the client. Data views recover their state from the
	// coherence directory, so the replacement is state-preserving.
	upstreamAddr string
	// upstreamAddrs lists the individual provider addresses wired at
	// install time — the orphan-detection view of upstreamAddr (which is
	// a composite ID for tree instances and so never matches a bare dead
	// address).
	upstreamAddrs []string
}

// NewEngine returns an engine over one transport.
func NewEngine(tr transport.Transport) *Engine {
	return &Engine{tr: tr, wrappers: map[netmodel.NodeID]*NodeWrapper{}, instances: map[string]instanceInfo{}}
}

// RegisterWrapper makes a node's wrapper available for installs.
func (e *Engine) RegisterWrapper(w *NodeWrapper) {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.wrappers[w.Node()] = w
}

// SetLookup attaches a lookup service: Teardown will deregister every
// entry bound to a torn-down instance's address, so the namespace never
// points at dead listeners.
func (e *Engine) SetLookup(l *Lookup) {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.lookup = l
}

// Generation returns the number of adaptation diffs applied so far.
// Concurrent adapters can use it as an optimistic check: observe the
// generation, plan, and skip the apply if another diff landed meanwhile.
func (e *Engine) Generation() int {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.generation
}

// InstanceStatus describes one live instance for monitoring: the
// placement key it realizes, where it runs, and its serving address.
type InstanceStatus struct {
	Key     string
	Node    netmodel.NodeID
	Addr    string
	Adopted bool
}

// LiveInstances snapshots the engine's live instances (adopted ones
// included), in no particular order. Failure detectors use this to know
// which nodes currently matter.
func (e *Engine) LiveInstances() []InstanceStatus {
	e.mu.Lock()
	defer e.mu.Unlock()
	out := make([]InstanceStatus, 0, len(e.instances))
	for key, info := range e.instances {
		out = append(out, InstanceStatus{
			Key: key, Node: info.node, Addr: info.addr, Adopted: info.instanceID == "",
		})
	}
	return out
}

// OrphanedBy returns the placement keys (sorted) of live instances
// whose upstream wiring chains transitively through any of the dead
// placements. An orphan is installed and answering, but every request
// it forwards hits a dead provider — so a planner must not anchor a
// new chain at it; it has to be re-planned (and re-wired) explicitly.
func (e *Engine) OrphanedBy(dead []planner.Placement) []string {
	e.mu.Lock()
	defer e.mu.Unlock()
	deadAddrs := map[string]bool{}
	for _, p := range dead {
		if info, ok := e.instances[p.Key()]; ok {
			deadAddrs[info.addr] = true
		}
	}
	if len(deadAddrs) == 0 {
		return nil
	}
	var orphans []string
	for changed := true; changed; {
		changed = false
		for key, info := range e.instances {
			if deadAddrs[info.addr] {
				continue
			}
			wiredToDead := false
			for _, ua := range info.upstreamAddrs {
				if deadAddrs[ua] {
					wiredToDead = true
					break
				}
			}
			if !wiredToDead {
				continue
			}
			deadAddrs[info.addr] = true
			orphans = append(orphans, key)
			changed = true
		}
	}
	sort.Strings(orphans)
	return orphans
}

// ControlAddrs returns the wrapper control address of every registered
// node that serves one (see NodeWrapper.ServeControl). These are the
// probe targets for active failure detection: a wrapper answers for its
// node regardless of which components it currently hosts, so probe
// failures blame the node, not a component whose upstream died.
func (e *Engine) ControlAddrs() map[netmodel.NodeID]string {
	e.mu.Lock()
	defer e.mu.Unlock()
	out := map[netmodel.NodeID]string{}
	for id, w := range e.wrappers {
		if addr := w.ControlAddr(); addr != "" {
			out[id] = addr
		}
	}
	return out
}

// AdoptInstance records a pre-deployed instance (e.g. the primary
// MailServer) so plans can link to it.
func (e *Engine) AdoptInstance(p planner.Placement, addr string) {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.instances[p.Key()] = instanceInfo{addr: addr, node: p.Node}
}

// Teardown uninstalls a placement's instance and forgets it. Adopted
// instances (installed outside the engine) are only forgotten.
func (e *Engine) Teardown(p planner.Placement) error {
	e.mu.Lock()
	defer e.mu.Unlock()
	key := p.Key()
	info, ok := e.instances[key]
	if !ok {
		return fmt.Errorf("smock: no instance for %s", key)
	}
	delete(e.instances, key)
	if e.lookup != nil {
		e.lookup.DeregisterAddr(info.addr)
	}
	if info.instanceID == "" {
		return nil // adopted; its owner uninstalls it
	}
	w, ok := e.wrappers[info.node]
	if !ok {
		return fmt.Errorf("smock: no wrapper for node %s", info.node)
	}
	return w.Uninstall(info.instanceID)
}

// Apply realizes a planner adaptation diff: instances evicted by
// revalidation are torn down immediately (their nodes may no longer be
// trusted with them), the new deployment is executed, and instances the
// diff marks Remove are left running to drain — live components
// installed earlier may still be wired through them, and safe teardown
// requires the quiescence detection that both the paper and this
// reproduction defer ("needs to carefully consider the internal state
// of components as well as any partially processed requests"). It
// returns the new head address.
func (e *Engine) Apply(diff *planner.Diff, svcRequires func(component string) (iface string, ok bool)) (string, error) {
	return e.ApplyWith(diff, svcRequires, ApplyOptions{})
}

// ApplyOptions customize how a diff is realized.
type ApplyOptions struct {
	// StateFor, when non-nil, supplies a serialized state snapshot for a
	// placement about to be installed (nil means install stateless). The
	// adaptation controller uses this to carry component state captured
	// from a predecessor instance across a cutover.
	StateFor func(p planner.Placement) []byte
}

// ApplyWith is Apply with options. Whole diffs are serialized per
// engine: concurrent callers queue on an apply lock so two adaptations
// can never interleave their teardown and deploy phases.
func (e *Engine) ApplyWith(diff *planner.Diff, svcRequires func(component string) (iface string, ok bool), opts ApplyOptions) (string, error) {
	e.applyMu.Lock()
	defer e.applyMu.Unlock()
	for _, p := range diff.Evicted {
		// Teardown is best-effort: the instance's node may already have
		// left the network.
		_ = e.Teardown(p)
	}
	addr, err := e.executeWith(diff.New, svcRequires, opts.StateFor)
	if err != nil {
		return "", err
	}
	e.mu.Lock()
	e.generation++
	e.mu.Unlock()
	return addr, nil
}

// AddrOf resolves a placement to its live instance address.
func (e *Engine) AddrOf(p planner.Placement) (string, bool) {
	e.mu.Lock()
	defer e.mu.Unlock()
	info, ok := e.instances[p.Key()]
	return info.addr, ok
}

// InstanceCount returns the number of live instances the engine knows.
func (e *Engine) InstanceCount() int {
	e.mu.Lock()
	defer e.mu.Unlock()
	return len(e.instances)
}

// Execute deploys every new placement of the deployment, provider
// first, and returns the address of the head component (the
// service-specific proxy target). Reused placements resolve to their
// recorded addresses.
func (e *Engine) Execute(dep *planner.Deployment, svcRequires func(component string) (iface string, ok bool)) (string, error) {
	return e.executeWith(dep, svcRequires, nil)
}

// executeWith is Execute with an optional state source for fresh
// installs (including the stale-rewire replacement path).
func (e *Engine) executeWith(dep *planner.Deployment, svcRequires func(component string) (iface string, ok bool), stateFor func(p planner.Placement) []byte) (string, error) {
	e.mu.Lock()
	defer e.mu.Unlock()
	if !chainShaped(dep) {
		return e.executeTree(dep, stateFor)
	}
	n := len(dep.Placements)
	addrs := make([]string, n)
	secrets := make([][]byte, n) // secrets[i] = secret of edge i -> i+1

	// Resolve or install tail-to-head so upstream addresses exist when
	// clients are activated.
	for i := n - 1; i >= 0; i-- {
		p := dep.Placements[i]
		key := p.Key()
		wantUpstream := ""
		if i < n-1 {
			wantUpstream = addrs[i+1]
		}
		if info, ok := e.instances[key]; ok {
			adopted := info.instanceID == ""
			// A terminal reuse (the plan's chain ends at this instance)
			// keeps its own upstream wiring; only interior positions
			// must match the planned provider's address.
			terminal := i == n-1
			if adopted || terminal || info.upstreamAddr == wantUpstream {
				addrs[i] = info.addr
				if i > 0 {
					secrets[i-1] = info.serveSecret
				}
				continue
			}
			// Stale wiring: the plan routes this instance to a different
			// provider than it was installed with. Replace it; the old
			// listener is closed and a fresh instance is wired below.
			delete(e.instances, key)
			if w, ok := e.wrappers[info.node]; ok {
				_ = w.Uninstall(info.instanceID)
			}
		} else if p.Reused {
			return "", fmt.Errorf("smock: plan reuses unknown instance %s", key)
		}
		w, ok := e.wrappers[p.Node]
		if !ok {
			return "", fmt.Errorf("smock: no wrapper registered for node %s", p.Node)
		}
		e.counter++
		order := InstallOrder{
			Component:       p.Component,
			InstanceID:      fmt.Sprintf("%s#%d", key, e.counter),
			Config:          p.Config,
			Upstreams:       map[string]string{},
			UpstreamSecrets: map[string][]byte{},
		}
		if stateFor != nil {
			order.State = stateFor(p)
		}
		var serveSecret []byte
		if i > 0 {
			// Generate the secret this instance shares with its client.
			serveSecret = make([]byte, 32)
			if _, err := rand.Read(serveSecret); err != nil {
				return "", fmt.Errorf("smock: edge secret: %w", err)
			}
			secrets[i-1] = serveSecret
			order.ServeSecret = serveSecret
		}
		var upstreamAddrs []string
		if i < n-1 {
			iface, ok := svcRequires(p.Component)
			if !ok {
				return "", fmt.Errorf("smock: component %q has a provider but no required interface", p.Component)
			}
			order.Upstreams[iface] = addrs[i+1]
			order.UpstreamSecrets[iface] = secrets[i]
			upstreamAddrs = []string{addrs[i+1]}
		}
		addr, err := w.Install(order)
		if err != nil {
			return "", err
		}
		addrs[i] = addr
		e.instances[key] = instanceInfo{
			addr: addr, serveSecret: serveSecret,
			instanceID: order.InstanceID, node: p.Node,
			upstreamAddr: wantUpstream, upstreamAddrs: upstreamAddrs,
		}
	}
	return addrs[0], nil
}

// chainShaped reports whether a deployment's linkage graph is the
// implicit chain (every placement's provider is the next placement).
// Deployments without recorded edges predate edge recording and are
// chains by construction; tree deployments carry explicit non-
// consecutive edges.
func chainShaped(dep *planner.Deployment) bool {
	if len(dep.Edges) == 0 {
		return true
	}
	if len(dep.Edges) != len(dep.Placements)-1 {
		return false
	}
	for _, ed := range dep.Edges {
		if ed.To != ed.From+1 {
			return false
		}
	}
	return true
}

// treeUpstreamID canonicalizes a placement's provider wiring — the
// sorted iface=addr pairs of its child edges — for the same staleness
// check chains do with the single upstream address.
func treeUpstreamID(edges []planner.Edge, addrs []string) string {
	if len(edges) == 0 {
		return ""
	}
	parts := make([]string, len(edges))
	for k, ed := range edges {
		parts[k] = ed.Iface + "=" + addrs[ed.To]
	}
	sort.Strings(parts)
	return strings.Join(parts, ",")
}

// executeTree realizes a tree-shaped deployment (solver backend over a
// multi-requirement service). Placements are flattened pre-order, so a
// reverse index walk resolves every provider subtree before the client
// that wires to it; each edge carries the interface name the client
// requires, which keys the wrapper's upstream map. Callers hold e.mu.
func (e *Engine) executeTree(dep *planner.Deployment, stateFor func(p planner.Placement) []byte) (string, error) {
	n := len(dep.Placements)
	children := make([][]planner.Edge, n)
	for _, ed := range dep.Edges {
		if ed.From < 0 || ed.From >= n || ed.To <= ed.From || ed.To >= n {
			return "", fmt.Errorf("smock: tree deployment has invalid edge %d -> %d", ed.From, ed.To)
		}
		if ed.Iface == "" {
			return "", fmt.Errorf("smock: tree edge %d -> %d has no interface name", ed.From, ed.To)
		}
		children[ed.From] = append(children[ed.From], ed)
	}
	addrs := make([]string, n)
	secretOf := make([][]byte, n) // secretOf[i] = serve secret of placement i
	for i := n - 1; i >= 0; i-- {
		p := dep.Placements[i]
		key := p.Key()
		wantUpstream := treeUpstreamID(children[i], addrs)
		if info, ok := e.instances[key]; ok {
			adopted := info.instanceID == ""
			// Leaves keep their own wiring; interior positions must match
			// the planned providers' addresses exactly.
			terminal := len(children[i]) == 0
			if adopted || terminal || info.upstreamAddr == wantUpstream {
				addrs[i] = info.addr
				secretOf[i] = info.serveSecret
				continue
			}
			delete(e.instances, key)
			if w, ok := e.wrappers[info.node]; ok {
				_ = w.Uninstall(info.instanceID)
			}
		} else if p.Reused {
			return "", fmt.Errorf("smock: plan reuses unknown instance %s", key)
		}
		w, ok := e.wrappers[p.Node]
		if !ok {
			return "", fmt.Errorf("smock: no wrapper registered for node %s", p.Node)
		}
		e.counter++
		order := InstallOrder{
			Component:       p.Component,
			InstanceID:      fmt.Sprintf("%s#%d", key, e.counter),
			Config:          p.Config,
			Upstreams:       map[string]string{},
			UpstreamSecrets: map[string][]byte{},
		}
		if stateFor != nil {
			order.State = stateFor(p)
		}
		var serveSecret []byte
		if i > 0 {
			serveSecret = make([]byte, 32)
			if _, err := rand.Read(serveSecret); err != nil {
				return "", fmt.Errorf("smock: edge secret: %w", err)
			}
			secretOf[i] = serveSecret
			order.ServeSecret = serveSecret
		}
		var upstreamAddrs []string
		for _, ed := range children[i] {
			order.Upstreams[ed.Iface] = addrs[ed.To]
			order.UpstreamSecrets[ed.Iface] = secretOf[ed.To]
			upstreamAddrs = append(upstreamAddrs, addrs[ed.To])
		}
		addr, err := w.Install(order)
		if err != nil {
			return "", err
		}
		addrs[i] = addr
		e.instances[key] = instanceInfo{
			addr: addr, serveSecret: serveSecret,
			instanceID: order.InstanceID, node: p.Node,
			upstreamAddr: wantUpstream, upstreamAddrs: upstreamAddrs,
		}
	}
	return addrs[0], nil
}
