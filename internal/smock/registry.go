// Package smock implements the framework's run-time system (HPDC'02,
// Section 3.2): Smock — "Secure Mobile Code". It provides the generic
// proxy and server, attribute-based lookup, node wrappers that install
// components remotely, and the deployment engine that realizes planner
// output. Go has no mobile code, so "downloading a component" ships a
// (factory name, configuration, state snapshot) triple over the wire
// format and the receiving wrapper activates it from a factory
// registry — the custom-serialization substitution documented in
// DESIGN.md.
package smock

import (
	"fmt"
	"sync"

	"partsvc/internal/netmodel"
	"partsvc/internal/property"
	"partsvc/internal/transport"
)

// ActivationContext carries everything a factory needs to bring a
// component instance to life on a node.
type ActivationContext struct {
	// InstanceID uniquely names the instance (e.g.
	// "ViewMailServer@sd-2#1").
	InstanceID string
	// Node is the hosting node.
	Node netmodel.NodeID
	// Config holds the factored property bindings chosen by the planner
	// (e.g. TrustLevel=4).
	Config property.Set
	// State is an opaque serialized state snapshot for migrated or
	// replicated instances (may be nil).
	State []byte
	// Upstreams provides a dialed endpoint per required interface,
	// already wired by the deployment engine.
	Upstreams map[string]transport.Endpoint
	// UpstreamSecrets carries one shared secret per required interface
	// edge; the matching provider receives the same bytes in
	// ServeSecret. Encryptor/Decryptor pairs use it as their channel
	// key; other components ignore it.
	UpstreamSecrets map[string][]byte
	// ServeSecret is the secret shared with this instance's client-side
	// edge (nil for heads).
	ServeSecret []byte
	// Clock is the time source (real or simulated).
	Clock transport.Clock
}

// Factory activates a component instance, returning the handler that
// serves its implemented interface.
type Factory func(ctx *ActivationContext) (transport.Handler, error)

// Registry maps component names to factories: the stand-in for Java
// dynamic class loading ("Smock ... benefits from the latter's support
// for dynamic class loading, verification, and installation").
type Registry struct {
	mu        sync.RWMutex
	factories map[string]Factory
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry { return &Registry{factories: map[string]Factory{}} }

// Register binds a component name to its factory; duplicate names are
// an error (a node must not silently swap implementations).
func (r *Registry) Register(component string, f Factory) error {
	if component == "" || f == nil {
		return fmt.Errorf("smock: factory registration needs a name and a function")
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, dup := r.factories[component]; dup {
		return fmt.Errorf("smock: component %q already registered", component)
	}
	r.factories[component] = f
	return nil
}

// Activate instantiates a component by name.
func (r *Registry) Activate(component string, ctx *ActivationContext) (transport.Handler, error) {
	r.mu.RLock()
	f, ok := r.factories[component]
	r.mu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("smock: no factory for component %q", component)
	}
	h, err := f(ctx)
	if err != nil {
		return nil, fmt.Errorf("smock: activating %q: %w", component, err)
	}
	return h, nil
}

// Components returns the registered component names (unordered length
// check helper for tests).
func (r *Registry) Components() int {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return len(r.factories)
}
