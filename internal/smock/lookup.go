package smock

import (
	"fmt"
	"strings"
	"sync"

	"partsvc/internal/transport"
	"partsvc/internal/wire"
)

// Entry is one registered service in the lookup namespace.
type Entry struct {
	// Service is the service name.
	Service string
	// Attrs are free-form attributes for attribute-based lookup
	// ("clients locate and download the proxy by using an
	// attribute-based lookup service").
	Attrs map[string]string
	// ServerAddr is the generic server's address — the "generic proxy"
	// payload a client downloads.
	ServerAddr string
}

// Lookup is the Jini-like lookup service (Figure 1, steps 1-2).
type Lookup struct {
	mu      sync.RWMutex
	entries []Entry
}

// NewLookup returns an empty lookup service.
func NewLookup() *Lookup { return &Lookup{} }

// Register adds a service entry (Figure 1, step 1). Re-registering a
// service name replaces the previous entry.
func (l *Lookup) Register(e Entry) error {
	if e.Service == "" || e.ServerAddr == "" {
		return fmt.Errorf("smock: lookup registration needs service and server address")
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	for i := range l.entries {
		if l.entries[i].Service == e.Service {
			l.entries[i] = e
			return nil
		}
	}
	l.entries = append(l.entries, e)
	return nil
}

// Deregister removes the entry registered under a service name,
// reporting whether one existed. A torn-down service must disappear
// from the namespace, or clients would keep downloading proxies bound
// to dead addresses.
func (l *Lookup) Deregister(service string) bool {
	l.mu.Lock()
	defer l.mu.Unlock()
	for i := range l.entries {
		if l.entries[i].Service == service {
			l.entries = append(l.entries[:i], l.entries[i+1:]...)
			return true
		}
	}
	return false
}

// DeregisterAddr removes every entry whose ServerAddr equals addr and
// returns how many were dropped. The deployment engine calls this from
// Teardown so a torn-down instance's address can no longer be found.
func (l *Lookup) DeregisterAddr(addr string) int {
	if addr == "" {
		return 0
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	kept := l.entries[:0]
	removed := 0
	for _, e := range l.entries {
		if e.ServerAddr == addr {
			removed++
			continue
		}
		kept = append(kept, e)
	}
	for i := len(kept); i < len(l.entries); i++ {
		l.entries[i] = Entry{}
	}
	l.entries = kept
	return removed
}

// Find returns the entries whose attributes contain every given
// attribute (empty attrs match everything). Service name, when
// non-empty, must match exactly.
func (l *Lookup) Find(service string, attrs map[string]string) []Entry {
	l.mu.RLock()
	defer l.mu.RUnlock()
	var out []Entry
	for _, e := range l.entries {
		if service != "" && e.Service != service {
			continue
		}
		match := true
		for k, v := range attrs {
			if e.Attrs[k] != v {
				match = false
				break
			}
		}
		if match {
			out = append(out, e)
		}
	}
	return out
}

// Handler exposes the lookup service over a transport: method
// "register" with meta {service, addr, attr.<k>: v}, method
// "deregister" with meta {service}, and method "lookup" with meta
// {service?, attr.<k>: v} returning meta {addr, service} of the first
// match.
func (l *Lookup) Handler() transport.Handler {
	return transport.HandlerFunc(func(m *wire.Message) *wire.Message {
		// Registered entries outlive the request, and transport requests
		// are zero-copy (their strings alias a slab released after the
		// response) — everything stored must own its bytes.
		attrs := map[string]string{}
		for k, v := range m.Meta {
			if len(k) > 5 && k[:5] == "attr." {
				attrs[strings.Clone(k[5:])] = strings.Clone(v)
			}
		}
		switch m.Method {
		case "register":
			err := l.Register(Entry{
				Service:    strings.Clone(m.Meta["service"]),
				Attrs:      attrs,
				ServerAddr: strings.Clone(m.Meta["addr"]),
			})
			if err != nil {
				return transport.ErrorResponse(m, "%v", err)
			}
			return &wire.Message{Kind: wire.KindResponse, ID: m.ID}
		case "deregister":
			removed := l.Deregister(m.Meta["service"])
			return &wire.Message{
				Kind: wire.KindResponse, ID: m.ID,
				Meta: map[string]string{"removed": fmt.Sprint(removed)},
			}
		case "lookup":
			found := l.Find(m.Meta["service"], attrs)
			if len(found) == 0 {
				return transport.ErrorResponse(m, "lookup: no service matches")
			}
			return &wire.Message{
				Kind: wire.KindResponse, ID: m.ID,
				Meta: map[string]string{"service": found[0].Service, "addr": found[0].ServerAddr},
			}
		default:
			return transport.ErrorResponse(m, "lookup: unknown method %q", m.Method)
		}
	})
}
