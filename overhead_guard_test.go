package partsvc

import (
	"context"
	"os"
	"testing"

	"partsvc/internal/api"
	"partsvc/internal/trace"
	"partsvc/internal/transport"
	"partsvc/internal/wire"
)

// benchmarkLoopbackRPC measures one echo RPC over TCP loopback — the
// denominator every overhead guard compares its instrumentation cost
// against.
func benchmarkLoopbackRPC(t *testing.T) testing.BenchmarkResult {
	t.Helper()
	h := transport.HandlerFunc(func(m *wire.Message) *wire.Message {
		return &wire.Message{Kind: wire.KindResponse, ID: m.ID, Body: m.Body}
	})
	tr := transport.NewTCP()
	ln, err := tr.Serve("127.0.0.1:0", h)
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	ep, err := tr.Dial(ln.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer ep.Close()
	body := make([]byte, 256)
	return testing.Benchmark(func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := ep.Call(&wire.Message{Kind: wire.KindRequest, Method: "echo", Body: body}); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// TestTracingOverheadGuard is the CI regression gate for the
// tracing-disabled fast path: the per-RPC cost of the disabled trace
// gates (one atomic load plus a context lookup each) must stay under
// 2% of one BenchmarkRPCThroughput-style TCP loopback call. It runs
// benchmarks in-process, so it is env-gated to keep `go test ./...`
// fast and quiet on laptops.
func TestTracingOverheadGuard(t *testing.T) {
	if os.Getenv("RUN_OVERHEAD_GUARD") == "" {
		t.Skip("set RUN_OVERHEAD_GUARD=1 to run the tracing overhead guard")
	}
	trace.SetEnabled(false)

	// Cost of one disabled gate: what every instrumented layer pays per
	// request when tracing is off.
	ctx := context.Background()
	gate := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			_, s := trace.Start(ctx, "guard")
			s.End()
		}
	})

	// Cost of one real RPC on the path the gates sit on.
	rpc := benchmarkLoopbackRPC(t)

	// Gates on one traced request path: client call, server serve, mail
	// handler, coherence flush, tunnel seal/open, plus slack.
	const gatesPerOp = 8
	gateNs := float64(gate.NsPerOp())
	rpcNs := float64(rpc.NsPerOp())
	if rpcNs == 0 {
		t.Fatal("rpc benchmark measured 0 ns/op")
	}
	overhead := gateNs * gatesPerOp / rpcNs
	t.Logf("disabled gate: %.1f ns/op × %d gates = %.0f ns vs RPC %.0f ns/op → %.3f%% overhead",
		gateNs, gatesPerOp, gateNs*gatesPerOp, rpcNs, 100*overhead)
	if allocs := gate.AllocsPerOp(); allocs != 0 {
		t.Errorf("disabled gate allocates %d objects/op, want 0", allocs)
	}
	if overhead > 0.02 {
		t.Errorf("disabled tracing adds %.2f%% to an RPC, budget is 2%%", 100*overhead)
	}
}

// TestEventBusOverheadGuard is the CI regression gate for the event
// bus's quiet path: publishing a control-plane event with no SSE
// subscriber attached (the common case — the adaptation loop always
// publishes, observers only sometimes watch) must cost under 1% of a
// TCP loopback RPC. Env-gated like the tracing guard.
func TestEventBusOverheadGuard(t *testing.T) {
	if os.Getenv("RUN_OVERHEAD_GUARD") == "" {
		t.Skip("set RUN_OVERHEAD_GUARD=1 to run the event bus overhead guard")
	}

	bus := api.NewBus(0)
	pub := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			bus.Publish(api.Event{Source: "adapt", Kind: "stage", Session: "carol", Detail: "flip"})
		}
	})

	rpc := benchmarkLoopbackRPC(t)
	pubNs := float64(pub.NsPerOp())
	rpcNs := float64(rpc.NsPerOp())
	if rpcNs == 0 {
		t.Fatal("rpc benchmark measured 0 ns/op")
	}
	// One event per RPC is already generous: the controller publishes
	// per adaptation step, not per data-plane request.
	overhead := pubNs / rpcNs
	t.Logf("no-subscriber publish: %.1f ns/op vs RPC %.0f ns/op → %.3f%% overhead",
		pubNs, rpcNs, 100*overhead)
	if overhead > 0.01 {
		t.Errorf("bus publish with no subscriber adds %.2f%% to an RPC, budget is 1%%", 100*overhead)
	}
}
