// Package partsvc's root benchmark suite maps one testing.B target to
// each evaluation artifact (see DESIGN.md's per-experiment index):
//
//	BenchmarkFig3EnumerateChains    — Figure 3 linkage enumeration (E2)
//	BenchmarkFig6Plan/*             — Figure 6 deployments (E5)
//	BenchmarkPlannerDPvsExhaustive  — ablation A1
//	BenchmarkFig7Scenario/*         — Figure 7 simulation (E6)
//	BenchmarkOneTimeCosts           — Section 4.2 one-time costs (E7)
//	BenchmarkCoherencePolicy/*      — ablation A2
//	BenchmarkPlannerScaling/*       — ablation A3
//	BenchmarkMailSendThroughView    — steady-state runtime request path
//	BenchmarkWireMessage            — serialization substrate
//	BenchmarkRPCThroughput          — data-plane concurrency (A4)
//	BenchmarkRPCMultiCore           — multi-core scale-out, ring vs tcp (A9)
//
// The simulator-core scheduler benchmarks (A5b) live next to the code
// they measure: BenchmarkSimCore and BenchmarkCalendarVsHeap in
// internal/sim.
package partsvc

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"

	"partsvc/internal/bench"
	"partsvc/internal/coherence"
	"partsvc/internal/mail"
	"partsvc/internal/netmodel"
	"partsvc/internal/planner"
	"partsvc/internal/seccrypto"
	"partsvc/internal/spec"
	"partsvc/internal/topology"
	"partsvc/internal/transport"
	"partsvc/internal/wire"
)

// newCaseStudyPlanner primes a planner with the NY primary, as in the
// case study.
func newCaseStudyPlanner(b *testing.B) *planner.Planner {
	b.Helper()
	pl := planner.New(spec.MailService(), topology.CaseStudy())
	ms, err := pl.PrimaryPlacement(spec.CompMailServer, topology.NYServer)
	if err != nil {
		b.Fatal(err)
	}
	pl.AddExisting(ms)
	return pl
}

// BenchmarkFig3EnumerateChains measures step 1 of planning: the valid
// component chains of Figure 3.
func BenchmarkFig3EnumerateChains(b *testing.B) {
	pl := newCaseStudyPlanner(b)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if got := pl.EnumerateChains(spec.IfaceClient); len(got) == 0 {
			b.Fatal("no chains")
		}
	}
}

// BenchmarkFig6Plan regenerates each Figure 6 deployment decision.
func BenchmarkFig6Plan(b *testing.B) {
	cases := []struct {
		name string
		node netmodel.NodeID
		user string
	}{
		{"NewYork", topology.NYClient, "Alice"},
		{"SanDiego", topology.SDClient, "Alice"},
		{"Seattle", topology.SeaClient, "Carol"},
	}
	for _, c := range cases {
		b.Run(c.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				pl := newCaseStudyPlanner(b)
				if c.name == "Seattle" {
					// Seattle plans against the existing SD deployment.
					sd, err := pl.Plan(planner.Request{
						Interface: spec.IfaceClient, ClientNode: topology.SDClient,
						User: "Alice", RateRPS: 50,
					})
					if err != nil {
						b.Fatal(err)
					}
					pl.AddExisting(sd.Placements...)
				}
				if _, err := pl.Plan(planner.Request{
					Interface: spec.IfaceClient, ClientNode: c.node, User: c.user, RateRPS: 50,
				}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkPlannerDPvsExhaustive is ablation A1: same request, both
// mappers.
func BenchmarkPlannerDPvsExhaustive(b *testing.B) {
	req := planner.Request{
		Interface: spec.IfaceClient, ClientNode: topology.SDClient, User: "Alice", RateRPS: 50,
	}
	b.Run("Exhaustive", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			pl := newCaseStudyPlanner(b)
			if _, err := pl.Plan(req); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("DP", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			pl := newCaseStudyPlanner(b)
			if _, err := pl.PlanDP(req); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkFig7Scenario simulates each Figure 7 scenario at 3 clients
// and reports the measured average send latency as a custom metric.
func BenchmarkFig7Scenario(b *testing.B) {
	cfg := bench.DefaultConfig()
	for _, sc := range bench.Scenarios() {
		b.Run(sc.Name, func(b *testing.B) {
			var last bench.Row
			for i := 0; i < b.N; i++ {
				last = bench.RunScenario(cfg, sc, 3)
			}
			b.ReportMetric(last.AvgMS, "avg_send_ms")
		})
	}
}

// BenchmarkOneTimeCosts measures the Section 4.2 one-time breakdown.
func BenchmarkOneTimeCosts(b *testing.B) {
	var total float64
	for i := 0; i < b.N; i++ {
		c, err := bench.MeasureOneTimeCosts()
		if err != nil {
			b.Fatal(err)
		}
		total = c.TotalMS()
	}
	b.ReportMetric(total, "onetime_ms")
}

// BenchmarkCoherencePolicy is ablation A2: the cached slow-site
// scenario under each policy.
func BenchmarkCoherencePolicy(b *testing.B) {
	cfg := bench.DefaultConfig()
	policies := []coherence.Policy{
		coherence.WriteThrough{},
		coherence.CountBound{Bound: 250},
		coherence.CountBound{Bound: 500},
		coherence.CountBound{Bound: 1000},
		coherence.None{},
	}
	for _, p := range policies {
		b.Run(p.String(), func(b *testing.B) {
			sc := bench.Scenario{Name: "sweep", Dynamic: true, Cached: true, Slow: true, Policy: p}
			var last bench.Row
			for i := 0; i < b.N; i++ {
				last = bench.RunScenario(cfg, sc, 2)
			}
			b.ReportMetric(last.AvgMS, "avg_send_ms")
		})
	}
}

// BenchmarkPlannerScaling is ablation A3: planning cost on growing
// Waxman topologies. Beyond time and allocations it reports the search
// volume (mappings_tried) and the route-cache hit rate, the two knobs
// the A3b optimization turns.
func BenchmarkPlannerScaling(b *testing.B) {
	for _, n := range []int{8, 12, 16, 32, 64, 128} {
		b.Run(fmt.Sprintf("nodes-%d", n), func(b *testing.B) {
			net, err := topology.Waxman(topology.DefaultWaxman(n, 7))
			if err != nil {
				b.Fatal(err)
			}
			nodes := net.Nodes()
			b.ReportAllocs()
			var st planner.Stats
			for i := 0; i < b.N; i++ {
				pl := planner.New(spec.MailService(), net)
				ms, err := pl.PrimaryPlacement(spec.CompMailServer, nodes[0].ID)
				if err != nil {
					// The random topology may lack a trust-5 node for
					// the primary's offers; pin one and retry once.
					b.Skip("seeded topology lacks a primary host")
				}
				pl.AddExisting(ms)
				if _, err := pl.PlanDP(planner.Request{
					Interface: spec.IfaceClient, ClientNode: nodes[1].ID, User: "Alice", RateRPS: 10,
				}); err != nil {
					b.Fatal(err)
				}
				st = pl.Stats()
			}
			b.ReportMetric(float64(st.MappingsTried), "mappings_tried")
			if lookups := st.RouteCacheHits + st.RouteCacheMisses; lookups > 0 {
				b.ReportMetric(float64(st.RouteCacheHits)/float64(lookups), "route_hit_rate")
			}
		})
	}
}

// BenchmarkMailSendThroughView measures the steady-state runtime send
// path: client -> view -> encryptor tunnel -> primary, in process.
func BenchmarkMailSendThroughView(b *testing.B) {
	keys := seccrypto.NewKeyRing()
	clock := transport.NewRealClock()
	primary := mail.NewServer(keys, clock)
	for _, u := range []string{"Alice", "Bob"} {
		if err := primary.CreateAccount(u); err != nil {
			b.Fatal(err)
		}
	}
	tr := transport.NewInProc()
	key, err := mail.NewChannelKey()
	if err != nil {
		b.Fatal(err)
	}
	ln, err := tr.Serve("d", mail.NewDecryptorHandler(mail.NewHandler(primary), key))
	if err != nil {
		b.Fatal(err)
	}
	defer ln.Close()
	ep, err := tr.Dial("d")
	if err != nil {
		b.Fatal(err)
	}
	view, err := mail.NewView(mail.ViewConfig{
		ID: "bench-view", Trust: 4, Keys: keys.SubRing(4),
		Upstream: mail.NewRemote(mail.NewEncryptorEndpoint(ep, key)),
		Policy:   coherence.CountBound{Bound: 500}, Clock: clock,
	}, 1<<32)
	if err != nil {
		b.Fatal(err)
	}
	alice := mail.NewClient("Alice", keys, view)
	body := make([]byte, 10240)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := alice.Send("Bob", "bench", body, 2); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkRPCThroughput is ablation A4: the RPC data plane under
// concurrent load. All callers share ONE endpoint (one connection for
// TCP), so the numbers expose how many requests the endpoint keeps in
// flight: a lock-step transport serializes the 8- and 64-caller cases
// back down to the single-caller rate, a multiplexed one scales them.
func BenchmarkRPCThroughput(b *testing.B) {
	h := transport.HandlerFunc(func(m *wire.Message) *wire.Message {
		return &wire.Message{
			Kind: wire.KindResponse, ID: m.ID, Target: m.Target, Method: m.Method,
			Body: m.Body,
		}
	})
	transports := []struct {
		name string
		mk   func() transport.Transport
	}{
		{"inproc", func() transport.Transport { return transport.NewInProc() }},
		{"tcp", func() transport.Transport { return transport.NewTCP() }},
		// tcp-zc is the full zero-copy data path: slab-decoded responses
		// owned (and released) by the callers. The Release below is a
		// no-op for the other two transports.
		{"tcp-zc", func() transport.Transport {
			t := transport.NewTCP()
			t.ZeroCopyResponses = true
			return t
		}},
		// ring is the co-located fast path: the same connection machinery
		// over shared-memory SPSC rings instead of a loopback socket.
		{"ring", func() transport.Transport {
			t := transport.NewTCP()
			t.Ring = true
			t.ZeroCopyResponses = true
			return t
		}},
	}
	body := make([]byte, 256)
	for _, tc := range transports {
		for _, callers := range []int{1, 8, 64, 256} {
			b.Run(fmt.Sprintf("%s/callers-%d", tc.name, callers), func(b *testing.B) {
				tr := tc.mk()
				ln, err := tr.Serve("", h)
				if err != nil {
					b.Fatal(err)
				}
				defer ln.Close()
				ep, err := tr.Dial(ln.Addr())
				if err != nil {
					b.Fatal(err)
				}
				defer ep.Close()
				b.ReportAllocs()
				b.ResetTimer()
				var next atomic.Int64
				var wg sync.WaitGroup
				errs := make(chan error, callers)
				for c := 0; c < callers; c++ {
					wg.Add(1)
					go func() {
						defer wg.Done()
						for {
							i := next.Add(1)
							if i > int64(b.N) {
								return
							}
							resp, err := ep.Call(&wire.Message{
								Kind: wire.KindRequest, Method: "echo", Body: body,
							})
							if err != nil {
								errs <- err
								return
							}
							if resp.Kind != wire.KindResponse {
								errs <- fmt.Errorf("kind = %v", resp.Kind)
								return
							}
							resp.Release()
						}
					}()
				}
				wg.Wait()
				b.StopTimer()
				close(errs)
				for err := range errs {
					b.Fatal(err)
				}
			})
		}
	}
}

// BenchmarkRPCMultiCore is ablation A9: the data plane's scale-out
// curve. It sweeps GOMAXPROCS × connections × transports with a fixed
// population of 64 callers (the MPSC writer's contention point), so
// the table answers two questions: how the lock-free write queue
// scales when cores are added, and how much the shared-memory ring
// buys over a loopback socket for co-located endpoints. Callers are
// spread round-robin over the connections; all connections share one
// transport (and therefore one stats plane), as in a real partition
// server hosting several co-located components.
func BenchmarkRPCMultiCore(b *testing.B) {
	h := transport.HandlerFunc(func(m *wire.Message) *wire.Message {
		return &wire.Message{
			Kind: wire.KindResponse, ID: m.ID, Target: m.Target, Method: m.Method,
			Body: m.Body,
		}
	})
	transports := []struct {
		name string
		mk   func() transport.Transport
	}{
		{"inproc", func() transport.Transport { return transport.NewInProc() }},
		{"tcp", func() transport.Transport {
			t := transport.NewTCP()
			t.ZeroCopyResponses = true
			return t
		}},
		{"ring", func() transport.Transport {
			t := transport.NewTCP()
			t.Ring = true
			t.ZeroCopyResponses = true
			return t
		}},
	}
	const callers = 64
	body := make([]byte, 256)
	prev := runtime.GOMAXPROCS(0)
	defer runtime.GOMAXPROCS(prev)
	for _, gmp := range []int{1, 2, 4} {
		for _, tc := range transports {
			for _, conns := range []int{1, 4} {
				name := fmt.Sprintf("gomaxprocs-%d/%s/conns-%d", gmp, tc.name, conns)
				b.Run(name, func(b *testing.B) {
					runtime.GOMAXPROCS(gmp)
					defer runtime.GOMAXPROCS(prev)
					tr := tc.mk()
					ln, err := tr.Serve("", h)
					if err != nil {
						b.Fatal(err)
					}
					defer ln.Close()
					eps := make([]transport.Endpoint, conns)
					for i := range eps {
						if eps[i], err = tr.Dial(ln.Addr()); err != nil {
							b.Fatal(err)
						}
						defer eps[i].Close()
					}
					b.ReportAllocs()
					b.ResetTimer()
					var next atomic.Int64
					var wg sync.WaitGroup
					errs := make(chan error, callers)
					for c := 0; c < callers; c++ {
						ep := eps[c%conns]
						wg.Add(1)
						go func() {
							defer wg.Done()
							for {
								i := next.Add(1)
								if i > int64(b.N) {
									return
								}
								resp, err := ep.Call(&wire.Message{
									Kind: wire.KindRequest, Method: "echo", Body: body,
								})
								if err != nil {
									errs <- err
									return
								}
								if resp.Kind != wire.KindResponse {
									errs <- fmt.Errorf("kind = %v", resp.Kind)
									return
								}
								resp.Release()
							}
						}()
					}
					wg.Wait()
					b.StopTimer()
					close(errs)
					for err := range errs {
						b.Fatal(err)
					}
				})
			}
		}
	}
}

// BenchmarkWireMessage measures the serialization substrate.
func BenchmarkWireMessage(b *testing.B) {
	m := &wire.Message{
		Kind: wire.KindRequest, ID: 42, Target: "ViewMailServer@sd-2", Method: "send",
		Meta: map[string]string{"user": "Alice"}, Body: make([]byte, 10240),
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		data, err := m.Marshal()
		if err != nil {
			b.Fatal(err)
		}
		if _, err := wire.UnmarshalMessage(data); err != nil {
			b.Fatal(err)
		}
	}
}
