package partsvc

import (
	"errors"
	"fmt"
	"os"
	"sort"
	"strconv"
	"sync"
	"testing"
	"time"

	"partsvc/internal/metrics"
	"partsvc/internal/transport"
	"partsvc/internal/wire"
)

// TestOfferedLoadCurve is the A8b experiment harness: a latency-vs-load
// curve against a deliberately small server (few workers, shallow
// admission queue, ~1 ms handler) so the shedding onset is visible at
// laptop-scale caller counts. For each offered load (closed-loop caller
// count) it reports completed and shed counts and the success-latency
// quantiles, then asserts the property admission control exists for:
// past the shedding onset, the p99 of SUCCESSFUL requests stays bounded
// by the queue's worst-case drain time instead of growing with the
// number of callers.
//
// Run with RUN_OFFERED_LOAD=1; OFFERED_LOAD_MS shrinks the per-point
// measurement window for CI (default 1000 ms).
func TestOfferedLoadCurve(t *testing.T) {
	if os.Getenv("RUN_OFFERED_LOAD") == "" {
		t.Skip("set RUN_OFFERED_LOAD=1 to run the offered-load experiment")
	}
	window := 1000 * time.Millisecond
	if ms := os.Getenv("OFFERED_LOAD_MS"); ms != "" {
		v, err := strconv.Atoi(ms)
		if err != nil {
			t.Fatalf("OFFERED_LOAD_MS=%q: %v", ms, err)
		}
		window = time.Duration(v) * time.Millisecond
	}

	const (
		workers    = 4
		queueDepth = 8
		handlerMS  = 1
	)
	tr := transport.NewTCP()
	tr.Workers = workers
	tr.QueueDepth = queueDepth
	tr.CallTimeout = 30 * time.Second
	h := transport.HandlerFunc(func(m *wire.Message) *wire.Message {
		time.Sleep(handlerMS * time.Millisecond)
		return &wire.Message{Kind: wire.KindResponse, ID: m.ID, Body: m.Body}
	})
	ln, err := tr.Serve("", h)
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()

	// Worst-case time a successful request can spend behind the queue:
	// the whole queue plus the in-service batch drains ahead of it. The
	// 10x slack absorbs scheduler jitter on loaded CI machines; the
	// assertion still fails decisively if success latency grows with the
	// caller count (unbounded queueing), which is the regression mode.
	boundMS := float64((queueDepth/workers+2)*handlerMS) * 10

	table := metrics.NewTable("callers", "completed", "shed", "shed_pct", "p50_ms", "p99_ms", "max_ms")
	type point struct {
		callers int
		shedPct float64
		p99MS   float64
	}
	var curve []point
	for _, callers := range []int{1, 8, 64, 256} {
		ep, err := tr.Dial(ln.Addr())
		if err != nil {
			t.Fatal(err)
		}
		var (
			mu        sync.Mutex
			latencies []float64
			shed      int64
		)
		stop := make(chan struct{})
		var wg sync.WaitGroup
		for c := 0; c < callers; c++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for {
					select {
					case <-stop:
						return
					default:
					}
					begin := time.Now()
					resp, err := ep.Call(&wire.Message{Kind: wire.KindRequest, Method: "load"})
					if err != nil {
						return // endpoint closed at window end
					}
					callErr := transport.AsError(resp)
					elapsed := float64(time.Since(begin)) / float64(time.Millisecond)
					mu.Lock()
					switch {
					case callErr == nil:
						latencies = append(latencies, elapsed)
					case errors.Is(callErr, transport.ErrOverloaded):
						shed++
					default:
						mu.Unlock()
						t.Errorf("callers=%d: %v", callers, callErr)
						return
					}
					mu.Unlock()
				}
			}()
		}
		time.Sleep(window)
		close(stop)
		wg.Wait()
		ep.Close()

		mu.Lock()
		sort.Float64s(latencies)
		n := len(latencies)
		if n == 0 {
			mu.Unlock()
			t.Fatalf("callers=%d: no successful requests", callers)
		}
		q := func(p float64) float64 { return latencies[min(n-1, int(p*float64(n)))] }
		total := float64(n) + float64(shed)
		shedPct := 100 * float64(shed) / total
		p50, p99, max := q(0.50), q(0.99), latencies[n-1]
		table.AddRow(callers, n, shed, fmt.Sprintf("%.1f%%", shedPct), p50, p99, max)
		curve = append(curve, point{callers: callers, shedPct: shedPct, p99MS: p99})
		mu.Unlock()
	}
	t.Logf("offered-load curve (workers=%d queue=%d handler=%dms window=%v):\n%s",
		workers, queueDepth, handlerMS, window, table)

	// The guard: shedding must actually start (the 256-caller point
	// floods a 4-worker server), and once it has, successful requests
	// keep bounded latency.
	last := curve[len(curve)-1]
	if last.shedPct == 0 {
		t.Fatalf("no shedding at %d callers against %d workers — admission control inert", last.callers, workers)
	}
	for _, p := range curve {
		if p.shedPct > 0 && p.p99MS > boundMS {
			t.Errorf("callers=%d: success p99 %.1f ms exceeds the queue-drain bound %.1f ms — latency grows past the shedding onset",
				p.callers, p.p99MS, boundMS)
		}
	}
}
