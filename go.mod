module partsvc

go 1.22
